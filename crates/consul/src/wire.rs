//! Binary wire codec for the sequencer protocol.
//!
//! `SimNet` moves [`SeqMsg`] values between threads by clone; the TCP
//! transport has to move them between *processes*, which makes this
//! module the trust boundary: everything arriving here is untrusted
//! bytes from a socket. The codec therefore
//!
//! - returns structured [`DecodeError`]s (never panics) on truncated,
//!   oversized, or otherwise malformed input,
//! - validates every declared count against the bytes actually
//!   remaining before reserving memory for it, and
//! - requires full consumption, so trailing garbage is rejected.
//!
//! Integers ride the same LEB128 varints as the tuple codec
//! (`linda-tuple` re-exports them), so one varint implementation serves
//! both layers.

use crate::net::HostId;
use crate::order::{BatchEntry, CheckpointImage, Record, RecordBody};
use crate::sequencer::SeqMsg;
use bytes::{Buf, BufMut, Bytes};
use linda_tuple::{get_uvarint, put_uvarint, DecodeError};

/// Hard cap on a single decoded frame, enforced by the transport before
/// any allocation. Snapshot frames carry a checkpoint image plus a log
/// tail, so this is generous; everything else is far smaller.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

const TAG_SUBMIT: u8 = 0;
const TAG_ORDERED: u8 = 1;
const TAG_SYNC_QUERY: u8 = 2;
const TAG_SYNC_REPLY: u8 = 3;
const TAG_NACK: u8 = 4;
const TAG_RETRANSMIT: u8 = 5;
const TAG_JOIN_REQ: u8 = 6;
const TAG_PING: u8 = 7;
const TAG_SNAPSHOT: u8 = 8;
const TAG_EVICTED: u8 = 9;

const BODY_APP: u8 = 0;
const BODY_BATCH: u8 = 1;
const BODY_FAIL: u8 = 2;
const BODY_JOIN: u8 = 3;
const BODY_CHECKPOINT: u8 = 4;

fn put_bytes(buf: &mut impl BufMut, b: &[u8]) {
    put_uvarint(buf, b.len() as u64);
    buf.put_slice(b);
}

fn get_bytes(buf: &mut impl Buf) -> Result<Bytes, DecodeError> {
    let n = get_count(buf, 1)?;
    let mut v = vec![0u8; n];
    buf.copy_to_slice(&mut v);
    Ok(Bytes::from(v))
}

/// Read a count whose elements each occupy at least `min_elem` bytes,
/// rejecting counts the remaining buffer cannot possibly satisfy. This
/// is what keeps a hostile 4-byte frame from claiming 2^40 records and
/// driving a huge `Vec` reservation.
fn get_count(buf: &mut impl Buf, min_elem: usize) -> Result<usize, DecodeError> {
    let n = get_uvarint(buf)? as usize;
    if n.saturating_mul(min_elem.max(1)) > buf.remaining() {
        return Err(DecodeError::LengthOverrun {
            declared: n,
            remaining: buf.remaining(),
        });
    }
    Ok(n)
}

fn put_host(buf: &mut impl BufMut, h: HostId) {
    put_uvarint(buf, u64::from(h.0));
}

fn get_host(buf: &mut impl Buf) -> Result<HostId, DecodeError> {
    let v = get_uvarint(buf)?;
    u32::try_from(v)
        .map(HostId)
        .map_err(|_| DecodeError::VarintOverflow)
}

fn put_record(buf: &mut impl BufMut, r: &Record) {
    put_uvarint(buf, r.seq);
    put_host(buf, r.origin);
    put_uvarint(buf, r.local);
    match &r.body {
        RecordBody::App(p) => {
            buf.put_u8(BODY_APP);
            put_bytes(buf, p);
        }
        RecordBody::Batch(entries) => {
            buf.put_u8(BODY_BATCH);
            put_uvarint(buf, entries.len() as u64);
            for e in entries {
                put_host(buf, e.origin);
                put_uvarint(buf, e.local);
                put_bytes(buf, &e.payload);
            }
        }
        RecordBody::Fail(h) => {
            buf.put_u8(BODY_FAIL);
            put_host(buf, *h);
        }
        RecordBody::Join(h) => {
            buf.put_u8(BODY_JOIN);
            put_host(buf, *h);
        }
        RecordBody::Checkpoint => buf.put_u8(BODY_CHECKPOINT),
    }
}

fn get_record(buf: &mut impl Buf) -> Result<Record, DecodeError> {
    let seq = get_uvarint(buf)?;
    let origin = get_host(buf)?;
    let local = get_uvarint(buf)?;
    if !buf.has_remaining() {
        return Err(DecodeError::UnexpectedEof);
    }
    let body = match buf.get_u8() {
        BODY_APP => RecordBody::App(get_bytes(buf)?),
        BODY_BATCH => {
            // Each entry is ≥3 bytes (origin + local + payload length).
            let n = get_count(buf, 3)?;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let origin = get_host(buf)?;
                let local = get_uvarint(buf)?;
                let payload = get_bytes(buf)?;
                entries.push(BatchEntry {
                    origin,
                    local,
                    payload,
                });
            }
            RecordBody::Batch(entries)
        }
        BODY_FAIL => RecordBody::Fail(get_host(buf)?),
        BODY_JOIN => RecordBody::Join(get_host(buf)?),
        BODY_CHECKPOINT => RecordBody::Checkpoint,
        other => return Err(DecodeError::BadTag(other)),
    };
    Ok(Record {
        seq,
        origin,
        local,
        body,
    })
}

fn put_records(buf: &mut impl BufMut, rs: &[Record]) {
    put_uvarint(buf, rs.len() as u64);
    for r in rs {
        put_record(buf, r);
    }
}

fn get_records(buf: &mut impl Buf) -> Result<Vec<Record>, DecodeError> {
    // A minimal record (seq + origin + local + checkpoint body) is 4 bytes.
    let n = get_count(buf, 4)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_record(buf)?);
    }
    Ok(out)
}

fn put_checkpoint(buf: &mut impl BufMut, cp: &Option<CheckpointImage>) {
    match cp {
        None => buf.put_u8(0),
        Some(cp) => {
            buf.put_u8(1);
            put_uvarint(buf, cp.seq);
            buf.put_u64_le(cp.digest);
            put_bytes(buf, &cp.bytes);
        }
    }
}

fn get_checkpoint(buf: &mut impl Buf) -> Result<Option<CheckpointImage>, DecodeError> {
    if !buf.has_remaining() {
        return Err(DecodeError::UnexpectedEof);
    }
    match buf.get_u8() {
        0 => Ok(None),
        1 => {
            let seq = get_uvarint(buf)?;
            if buf.remaining() < 8 {
                return Err(DecodeError::UnexpectedEof);
            }
            let digest = buf.get_u64_le();
            let bytes = get_bytes(buf)?;
            Ok(Some(CheckpointImage { seq, digest, bytes }))
        }
        other => Err(DecodeError::BadTag(other)),
    }
}

fn put_retired(buf: &mut impl BufMut, retired: &[(HostId, u64)]) {
    put_uvarint(buf, retired.len() as u64);
    for (h, l) in retired {
        put_host(buf, *h);
        put_uvarint(buf, *l);
    }
}

fn get_retired(buf: &mut impl Buf) -> Result<Vec<(HostId, u64)>, DecodeError> {
    let n = get_count(buf, 2)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let h = get_host(buf)?;
        let l = get_uvarint(buf)?;
        out.push((h, l));
    }
    Ok(out)
}

fn put_hosts(buf: &mut impl BufMut, hs: &[HostId]) {
    put_uvarint(buf, hs.len() as u64);
    for h in hs {
        put_host(buf, *h);
    }
}

fn get_hosts(buf: &mut impl Buf) -> Result<Vec<HostId>, DecodeError> {
    let n = get_count(buf, 1)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_host(buf)?);
    }
    Ok(out)
}

/// Encode a [`SeqMsg`] into a fresh buffer.
pub fn encode_seq_msg(msg: &SeqMsg) -> Vec<u8> {
    use crate::net::WireSized;
    let mut buf = Vec::with_capacity(msg.wire_size() + 16);
    match msg {
        SeqMsg::Submit { local, payload } => {
            buf.put_u8(TAG_SUBMIT);
            put_uvarint(&mut buf, *local);
            put_bytes(&mut buf, payload);
        }
        SeqMsg::Ordered(r) => {
            buf.put_u8(TAG_ORDERED);
            put_record(&mut buf, r);
        }
        SeqMsg::SyncQuery { have } => {
            buf.put_u8(TAG_SYNC_QUERY);
            put_uvarint(&mut buf, *have);
        }
        SeqMsg::SyncReply {
            checkpoint,
            retired,
            failed,
            records,
        } => {
            buf.put_u8(TAG_SYNC_REPLY);
            put_checkpoint(&mut buf, checkpoint);
            put_retired(&mut buf, retired);
            put_hosts(&mut buf, failed);
            put_records(&mut buf, records);
        }
        SeqMsg::Nack { from } => {
            buf.put_u8(TAG_NACK);
            put_uvarint(&mut buf, *from);
        }
        SeqMsg::Retransmit { records } => {
            buf.put_u8(TAG_RETRANSMIT);
            put_records(&mut buf, records);
        }
        SeqMsg::JoinReq { incarnation } => {
            buf.put_u8(TAG_JOIN_REQ);
            put_uvarint(&mut buf, *incarnation);
        }
        SeqMsg::Ping {
            sent_us,
            echo_us,
            held_us,
        } => {
            buf.put_u8(TAG_PING);
            put_uvarint(&mut buf, *sent_us);
            put_uvarint(&mut buf, *echo_us);
            put_uvarint(&mut buf, *held_us);
        }
        SeqMsg::Snapshot {
            checkpoint,
            retired,
            failed,
            tail,
            live,
        } => {
            buf.put_u8(TAG_SNAPSHOT);
            put_checkpoint(&mut buf, checkpoint);
            put_retired(&mut buf, retired);
            put_hosts(&mut buf, failed);
            put_records(&mut buf, tail);
            put_hosts(&mut buf, live);
        }
        SeqMsg::Evicted => buf.put_u8(TAG_EVICTED),
    }
    buf
}

/// Decode a [`SeqMsg`] from untrusted bytes, requiring full consumption.
pub fn decode_seq_msg(mut bytes: &[u8]) -> Result<SeqMsg, DecodeError> {
    let buf = &mut bytes;
    if !buf.has_remaining() {
        return Err(DecodeError::UnexpectedEof);
    }
    let msg = match buf.get_u8() {
        TAG_SUBMIT => {
            let local = get_uvarint(buf)?;
            let payload = get_bytes(buf)?;
            SeqMsg::Submit { local, payload }
        }
        TAG_ORDERED => SeqMsg::Ordered(get_record(buf)?),
        TAG_SYNC_QUERY => SeqMsg::SyncQuery {
            have: get_uvarint(buf)?,
        },
        TAG_SYNC_REPLY => SeqMsg::SyncReply {
            checkpoint: get_checkpoint(buf)?,
            retired: get_retired(buf)?,
            failed: get_hosts(buf)?,
            records: get_records(buf)?,
        },
        TAG_NACK => SeqMsg::Nack {
            from: get_uvarint(buf)?,
        },
        TAG_RETRANSMIT => SeqMsg::Retransmit {
            records: get_records(buf)?,
        },
        TAG_JOIN_REQ => SeqMsg::JoinReq {
            incarnation: get_uvarint(buf)?,
        },
        TAG_PING => SeqMsg::Ping {
            sent_us: get_uvarint(buf)?,
            echo_us: get_uvarint(buf)?,
            held_us: get_uvarint(buf)?,
        },
        TAG_SNAPSHOT => SeqMsg::Snapshot {
            checkpoint: get_checkpoint(buf)?,
            retired: get_retired(buf)?,
            failed: get_hosts(buf)?,
            tail: get_records(buf)?,
            live: get_hosts(buf)?,
        },
        TAG_EVICTED => SeqMsg::Evicted,
        other => return Err(DecodeError::BadTag(other)),
    };
    if buf.has_remaining() {
        return Err(DecodeError::LengthOverrun {
            declared: 0,
            remaining: buf.remaining(),
        });
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record {
                seq: 1,
                origin: HostId(0),
                local: 7,
                body: RecordBody::App(Bytes::from_static(b"payload")),
            },
            Record {
                seq: 2,
                origin: HostId(1),
                local: 0,
                body: RecordBody::Fail(HostId(2)),
            },
            Record {
                seq: 3,
                origin: HostId(1),
                local: 0,
                body: RecordBody::Join(HostId(2)),
            },
            Record {
                seq: 4,
                origin: HostId(1),
                local: 0,
                body: RecordBody::Checkpoint,
            },
            Record {
                seq: 5,
                origin: HostId(0),
                local: 9,
                body: RecordBody::Batch(vec![
                    BatchEntry {
                        origin: HostId(0),
                        local: 9,
                        payload: Bytes::from_static(b"a"),
                    },
                    BatchEntry {
                        origin: HostId(2),
                        local: 3,
                        payload: Bytes::new(),
                    },
                ]),
            },
        ]
    }

    fn all_msgs() -> Vec<SeqMsg> {
        vec![
            SeqMsg::Submit {
                local: 42,
                payload: Bytes::from_static(b"hello"),
            },
            SeqMsg::Ordered(sample_records().remove(0)),
            SeqMsg::Ordered(sample_records().remove(4)),
            SeqMsg::SyncQuery { have: u64::MAX },
            SeqMsg::SyncReply {
                checkpoint: Some(CheckpointImage {
                    seq: 512,
                    digest: 0xdead_beef,
                    bytes: Bytes::from_static(b"image"),
                }),
                retired: vec![(HostId(0), 12), (HostId(3), 1)],
                failed: vec![HostId(3)],
                records: sample_records(),
            },
            SeqMsg::SyncReply {
                checkpoint: None,
                retired: vec![],
                failed: vec![],
                records: vec![],
            },
            SeqMsg::Nack { from: 1000 },
            SeqMsg::Retransmit {
                records: sample_records(),
            },
            SeqMsg::JoinReq {
                incarnation: 0xdead_beef_cafe,
            },
            SeqMsg::Ping {
                sent_us: 1_700_000_000_000_000,
                echo_us: 1_699_999_999_999_000,
                held_us: 950,
            },
            SeqMsg::Ping {
                sent_us: 7,
                echo_us: 0,
                held_us: 0,
            },
            SeqMsg::Snapshot {
                checkpoint: None,
                retired: vec![(HostId(1), 5)],
                failed: vec![HostId(0), HostId(1)],
                tail: sample_records(),
                live: vec![HostId(2), HostId(3)],
            },
            SeqMsg::Evicted,
        ]
    }

    #[test]
    fn seq_msgs_roundtrip() {
        for msg in all_msgs() {
            let enc = encode_seq_msg(&msg);
            let back = decode_seq_msg(&enc).expect("decode");
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn every_truncation_errors_never_panics() {
        for msg in all_msgs() {
            let enc = encode_seq_msg(&msg);
            for cut in 0..enc.len() {
                assert!(
                    decode_seq_msg(&enc[..cut]).is_err(),
                    "truncation at {cut} must fail, msg {msg:?}"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut enc = encode_seq_msg(&SeqMsg::Evicted);
        enc.push(0);
        assert!(decode_seq_msg(&enc).is_err());
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(matches!(
            decode_seq_msg(&[0xee]),
            Err(DecodeError::BadTag(0xee))
        ));
    }

    #[test]
    fn hostile_record_count_rejected() {
        // Retransmit claiming 2^40 records in a 6-byte frame must be
        // rejected by the count check, not drive a giant reservation.
        let mut buf = vec![TAG_RETRANSMIT];
        put_uvarint(&mut buf, 1u64 << 40);
        assert!(matches!(
            decode_seq_msg(&buf),
            Err(DecodeError::LengthOverrun { .. })
        ));
    }

    #[test]
    fn hostile_payload_length_rejected() {
        let mut buf = vec![TAG_SUBMIT];
        put_uvarint(&mut buf, 1); // local
        put_uvarint(&mut buf, 1u64 << 50); // payload length
        buf.push(b'x');
        assert!(matches!(
            decode_seq_msg(&buf),
            Err(DecodeError::LengthOverrun { .. })
        ));
    }

    #[test]
    fn random_bytes_never_panic() {
        // Cheap deterministic fuzz: xorshift-mutated buffers of varied
        // lengths must decode or error, never panic.
        let mut state = 0x243f_6a88_85a3_08d3u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for len in 0..256usize {
            let mut buf = vec![0u8; len];
            for b in buf.iter_mut() {
                *b = (next() & 0xff) as u8;
            }
            let _ = decode_seq_msg(&buf);
            // Also steer the first byte through every valid tag.
            for tag in 0..=TAG_EVICTED {
                if !buf.is_empty() {
                    buf[0] = tag;
                }
                let _ = decode_seq_msg(&buf);
            }
        }
    }
}

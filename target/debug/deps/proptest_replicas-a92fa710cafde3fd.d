/root/repo/target/debug/deps/proptest_replicas-a92fa710cafde3fd.d: tests/proptest_replicas.rs

/root/repo/target/debug/deps/proptest_replicas-a92fa710cafde3fd: tests/proptest_replicas.rs

tests/proptest_replicas.rs:

/root/repo/target/release/deps/ftlinda-d492b6e9db877a30.d: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/error.rs crates/core/src/runtime.rs crates/core/src/server.rs

/root/repo/target/release/deps/libftlinda-d492b6e9db877a30.rlib: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/error.rs crates/core/src/runtime.rs crates/core/src/server.rs

/root/repo/target/release/deps/libftlinda-d492b6e9db877a30.rmeta: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/error.rs crates/core/src/runtime.rs crates/core/src/server.rs

crates/core/src/lib.rs:
crates/core/src/cluster.rs:
crates/core/src/error.rs:
crates/core/src/runtime.rs:
crates/core/src/server.rs:

/root/repo/target/debug/examples/divide_conquer-030d1d581a80f5c5.d: examples/divide_conquer.rs Cargo.toml

/root/repo/target/debug/examples/libdivide_conquer-030d1d581a80f5c5.rmeta: examples/divide_conquer.rs Cargo.toml

examples/divide_conquer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/ablation_ordering-c8762e72f1d51259.d: crates/bench/benches/ablation_ordering.rs Cargo.toml

/root/repo/target/debug/deps/libablation_ordering-c8762e72f1d51259.rmeta: crates/bench/benches/ablation_ordering.rs Cargo.toml

crates/bench/benches/ablation_ordering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! Wire codec for tuples, values, and patterns.
//!
//! The paper's efficiency claim is that one multicast *message* per AGS
//! suffices; message size accounting is therefore part of the reproduction
//! (experiment E9). We hand-roll a compact binary format on top of `bytes`:
//! LEB128 varints for lengths and integers (zigzag for signed), one tag
//! byte per value.
//!
//! The format is self-describing and round-trips exactly (floats by bit
//! pattern), so every replica decodes identical state-machine commands.

use crate::pattern::{PatField, Pattern};
use crate::tuple::Tuple;
use crate::value::{TypeTag, Value};
use bytes::{Buf, BufMut};
use std::fmt;

/// Errors from decoding a malformed buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer ended before the value was complete.
    UnexpectedEof,
    /// An unknown tag byte was encountered.
    BadTag(u8),
    /// A varint exceeded 64 bits.
    VarintOverflow,
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A char field was not a valid Unicode scalar.
    BadChar(u32),
    /// A declared length was implausibly large for the remaining buffer.
    LengthOverrun {
        /// Length the buffer claimed.
        declared: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// Nested tuples exceeded [`MAX_VALUE_DEPTH`].
    TooDeep,
}

/// Maximum nesting depth of `Value::Tuple` the decoder will follow.
///
/// `get_value` recurses once per nesting level; without a cap a ~40-byte
/// hostile frame of repeated Tuple tags overflows the decode thread's
/// stack. 32 levels is far beyond anything the AGS layer produces.
pub const MAX_VALUE_DEPTH: usize = 32;

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of buffer"),
            DecodeError::BadTag(b) => write!(f, "unknown tag byte {b:#04x}"),
            DecodeError::VarintOverflow => write!(f, "varint longer than 64 bits"),
            DecodeError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            DecodeError::BadChar(c) => write!(f, "invalid unicode scalar {c:#x}"),
            DecodeError::LengthOverrun {
                declared,
                remaining,
            } => write!(
                f,
                "declared length {declared} exceeds remaining {remaining} bytes"
            ),
            DecodeError::TooDeep => {
                write!(f, "tuple nesting exceeds {MAX_VALUE_DEPTH} levels")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encode an unsigned LEB128 varint.
pub fn put_uvarint(buf: &mut impl BufMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Decode an unsigned LEB128 varint.
pub fn get_uvarint(buf: &mut impl Buf) -> Result<u64, DecodeError> {
    let mut shift = 0u32;
    let mut out = 0u64;
    loop {
        if !buf.has_remaining() {
            return Err(DecodeError::UnexpectedEof);
        }
        let b = buf.get_u8();
        if shift == 63 && b > 1 {
            return Err(DecodeError::VarintOverflow);
        }
        out |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(out);
        }
        shift += 7;
        if shift > 63 {
            return Err(DecodeError::VarintOverflow);
        }
    }
}

/// Zigzag-encode a signed varint.
pub fn put_ivarint(buf: &mut impl BufMut, v: i64) {
    put_uvarint(buf, ((v << 1) ^ (v >> 63)) as u64);
}

/// Decode a zigzag signed varint.
pub fn get_ivarint(buf: &mut impl Buf) -> Result<i64, DecodeError> {
    let u = get_uvarint(buf)?;
    Ok(((u >> 1) as i64) ^ -((u & 1) as i64))
}

fn get_len_checked(buf: &mut impl Buf) -> Result<usize, DecodeError> {
    let n = get_uvarint(buf)? as usize;
    if n > buf.remaining() {
        return Err(DecodeError::LengthOverrun {
            declared: n,
            remaining: buf.remaining(),
        });
    }
    Ok(n)
}

/// Encode a single [`Value`] (tag byte + payload).
pub fn put_value(buf: &mut impl BufMut, v: &Value) {
    buf.put_u8(v.type_tag() as u8);
    match v {
        Value::Int(i) => put_ivarint(buf, *i),
        Value::Float(x) => buf.put_u64_le(x.to_bits()),
        Value::Bool(b) => buf.put_u8(*b as u8),
        Value::Char(c) => buf.put_u32_le(*c as u32),
        Value::Str(s) => {
            put_uvarint(buf, s.len() as u64);
            buf.put_slice(s.as_bytes());
        }
        Value::Bytes(b) => {
            put_uvarint(buf, b.len() as u64);
            buf.put_slice(b);
        }
        Value::Tuple(fields) => {
            put_uvarint(buf, fields.len() as u64);
            for f in fields {
                put_value(buf, f);
            }
        }
    }
}

/// Decode a single [`Value`].
pub fn get_value(buf: &mut impl Buf) -> Result<Value, DecodeError> {
    get_value_at(buf, 0)
}

fn get_value_at(buf: &mut impl Buf, depth: usize) -> Result<Value, DecodeError> {
    if depth > MAX_VALUE_DEPTH {
        return Err(DecodeError::TooDeep);
    }
    if !buf.has_remaining() {
        return Err(DecodeError::UnexpectedEof);
    }
    let tag = buf.get_u8();
    let tag = TypeTag::from_u8(tag).ok_or(DecodeError::BadTag(tag))?;
    Ok(match tag {
        TypeTag::Int => Value::Int(get_ivarint(buf)?),
        TypeTag::Float => {
            if buf.remaining() < 8 {
                return Err(DecodeError::UnexpectedEof);
            }
            Value::Float(f64::from_bits(buf.get_u64_le()))
        }
        TypeTag::Bool => {
            if !buf.has_remaining() {
                return Err(DecodeError::UnexpectedEof);
            }
            Value::Bool(buf.get_u8() != 0)
        }
        TypeTag::Char => {
            if buf.remaining() < 4 {
                return Err(DecodeError::UnexpectedEof);
            }
            let c = buf.get_u32_le();
            Value::Char(char::from_u32(c).ok_or(DecodeError::BadChar(c))?)
        }
        TypeTag::Str => {
            let n = get_len_checked(buf)?;
            let mut bytes = vec![0u8; n];
            buf.copy_to_slice(&mut bytes);
            Value::Str(String::from_utf8(bytes).map_err(|_| DecodeError::BadUtf8)?)
        }
        TypeTag::Bytes => {
            let n = get_len_checked(buf)?;
            let mut bytes = vec![0u8; n];
            buf.copy_to_slice(&mut bytes);
            Value::Bytes(bytes)
        }
        TypeTag::Tuple => {
            let n = get_arity_checked(buf)?;
            let mut fields = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                fields.push(get_value_at(buf, depth + 1)?);
            }
            Value::Tuple(fields)
        }
    })
}

/// Field counts: each field is at least one byte, so a count larger than
/// the remaining buffer is hostile — reject it before reserving anything.
fn get_arity_checked(buf: &mut impl Buf) -> Result<usize, DecodeError> {
    let n = get_uvarint(buf)? as usize;
    if n > buf.remaining() {
        return Err(DecodeError::LengthOverrun {
            declared: n,
            remaining: buf.remaining(),
        });
    }
    Ok(n)
}

/// Encode a [`Tuple`] (field count + fields).
pub fn put_tuple(buf: &mut impl BufMut, t: &Tuple) {
    put_uvarint(buf, t.arity() as u64);
    for v in t.fields() {
        put_value(buf, v);
    }
}

/// Decode a [`Tuple`].
pub fn get_tuple(buf: &mut impl Buf) -> Result<Tuple, DecodeError> {
    let n = get_arity_checked(buf)?;
    let mut fields = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        fields.push(get_value_at(buf, 1)?);
    }
    Ok(Tuple::new(fields))
}

const PAT_ACTUAL: u8 = 0x40;
const PAT_FORMAL: u8 = 0x41;

/// Encode a [`Pattern`].
pub fn put_pattern(buf: &mut impl BufMut, p: &Pattern) {
    put_uvarint(buf, p.arity() as u64);
    for f in p.fields() {
        match f {
            PatField::Actual(v) => {
                buf.put_u8(PAT_ACTUAL);
                put_value(buf, v);
            }
            PatField::Formal(t) => {
                buf.put_u8(PAT_FORMAL);
                buf.put_u8(*t as u8);
            }
        }
    }
}

/// Decode a [`Pattern`].
pub fn get_pattern(buf: &mut impl Buf) -> Result<Pattern, DecodeError> {
    let n = get_arity_checked(buf)?;
    let mut fields = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        if !buf.has_remaining() {
            return Err(DecodeError::UnexpectedEof);
        }
        match buf.get_u8() {
            PAT_ACTUAL => fields.push(PatField::Actual(get_value_at(buf, 1)?)),
            PAT_FORMAL => {
                if !buf.has_remaining() {
                    return Err(DecodeError::UnexpectedEof);
                }
                let t = buf.get_u8();
                fields.push(PatField::Formal(
                    TypeTag::from_u8(t).ok_or(DecodeError::BadTag(t))?,
                ));
            }
            other => return Err(DecodeError::BadTag(other)),
        }
    }
    Ok(Pattern::new(fields))
}

/// Encode a tuple into a fresh buffer (convenience).
pub fn encode_tuple(t: &Tuple) -> Vec<u8> {
    let mut buf = Vec::with_capacity(t.size_bytes() + 8);
    put_tuple(&mut buf, t);
    buf
}

/// Decode a tuple from a byte slice, requiring full consumption.
pub fn decode_tuple(mut bytes: &[u8]) -> Result<Tuple, DecodeError> {
    let t = get_tuple(&mut bytes)?;
    if !bytes.is_empty() {
        return Err(DecodeError::LengthOverrun {
            declared: 0,
            remaining: bytes.len(),
        });
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{pat, tuple};

    fn roundtrip_value(v: Value) {
        let mut buf = Vec::new();
        put_value(&mut buf, &v);
        let mut slice = buf.as_slice();
        let back = get_value(&mut slice).unwrap();
        assert_eq!(back, v);
        assert!(slice.is_empty(), "decoder must consume exactly");
    }

    #[test]
    fn value_roundtrips() {
        roundtrip_value(Value::Int(0));
        roundtrip_value(Value::Int(i64::MIN));
        roundtrip_value(Value::Int(i64::MAX));
        roundtrip_value(Value::Float(3.25));
        roundtrip_value(Value::Float(f64::NAN));
        roundtrip_value(Value::Float(-0.0));
        roundtrip_value(Value::Bool(true));
        roundtrip_value(Value::Bool(false));
        roundtrip_value(Value::Char('💡'));
        roundtrip_value(Value::Str(String::new()));
        roundtrip_value(Value::Str("héllo".into()));
        roundtrip_value(Value::Bytes(vec![]));
        roundtrip_value(Value::Bytes((0..=255).collect()));
        roundtrip_value(Value::Tuple(vec![
            Value::Int(1),
            Value::Tuple(vec![Value::Str("nested".into())]),
        ]));
    }

    #[test]
    fn tuple_roundtrip() {
        let t = tuple!("job", 42, 2.5, true, 'x');
        let enc = encode_tuple(&t);
        assert_eq!(decode_tuple(&enc).unwrap(), t);
    }

    #[test]
    fn empty_tuple_roundtrip() {
        let enc = encode_tuple(&Tuple::empty());
        assert_eq!(enc, vec![0]);
        assert_eq!(decode_tuple(&enc).unwrap(), Tuple::empty());
    }

    #[test]
    fn pattern_roundtrip() {
        let p = pat!("job", ?int, 2.5, ?str);
        let mut buf = Vec::new();
        put_pattern(&mut buf, &p);
        let mut slice = buf.as_slice();
        assert_eq!(get_pattern(&mut slice).unwrap(), p);
        assert!(slice.is_empty());
    }

    #[test]
    fn varint_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX] {
            let mut buf = Vec::new();
            put_uvarint(&mut buf, v);
            assert_eq!(get_uvarint(&mut buf.as_slice()).unwrap(), v);
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -300] {
            let mut buf = Vec::new();
            put_ivarint(&mut buf, v);
            assert_eq!(get_ivarint(&mut buf.as_slice()).unwrap(), v);
        }
    }

    #[test]
    fn small_ints_are_small() {
        let mut buf = Vec::new();
        put_value(&mut buf, &Value::Int(5));
        assert_eq!(buf.len(), 2, "tag + 1 varint byte");
    }

    #[test]
    fn truncated_buffers_error() {
        let enc = encode_tuple(&tuple!("job", 42));
        for cut in 0..enc.len() {
            assert!(
                decode_tuple(&enc[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut enc = encode_tuple(&tuple!(1));
        enc.push(0xff);
        assert!(decode_tuple(&enc).is_err());
    }

    #[test]
    fn bad_tag_rejected() {
        let buf = [0x99u8, 0x00];
        assert!(matches!(
            get_value(&mut buf.as_slice()),
            Err(DecodeError::BadTag(0x99))
        ));
    }

    #[test]
    fn hostile_length_rejected() {
        // Claim a 2^60-byte string with a 3-byte buffer.
        let mut buf = Vec::new();
        buf.put_u8(TypeTag::Str as u8);
        put_uvarint(&mut buf, 1u64 << 60);
        buf.put_u8(b'x');
        assert!(matches!(
            get_value(&mut buf.as_slice()),
            Err(DecodeError::LengthOverrun { .. })
        ));
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut buf = Vec::new();
        buf.put_u8(TypeTag::Str as u8);
        put_uvarint(&mut buf, 2);
        buf.put_slice(&[0xff, 0xfe]);
        assert_eq!(get_value(&mut buf.as_slice()), Err(DecodeError::BadUtf8));
    }

    #[test]
    fn bad_char_rejected() {
        let mut buf = Vec::new();
        buf.put_u8(TypeTag::Char as u8);
        buf.put_u32_le(0xD800); // surrogate
        assert!(matches!(
            get_value(&mut buf.as_slice()),
            Err(DecodeError::BadChar(0xD800))
        ));
    }

    #[test]
    fn varint_overflow_rejected() {
        let buf = [0xffu8; 11];
        assert_eq!(
            get_uvarint(&mut buf.as_slice()),
            Err(DecodeError::VarintOverflow)
        );
    }

    #[test]
    fn error_display() {
        let e = DecodeError::BadTag(7);
        assert!(e.to_string().contains("0x07"));
        assert!(DecodeError::TooDeep.to_string().contains("nesting"));
    }

    #[test]
    fn nesting_to_the_cap_roundtrips() {
        let mut v = Value::Int(0);
        for _ in 0..MAX_VALUE_DEPTH - 1 {
            v = Value::Tuple(vec![v]);
        }
        roundtrip_value(v);
    }

    #[test]
    fn hostile_deep_nesting_rejected() {
        // A run of Tuple tags each declaring one nested field: without the
        // depth cap this recurses once per byte pair and overflows the stack.
        let mut buf = Vec::new();
        for _ in 0..100_000 {
            buf.put_u8(TypeTag::Tuple as u8);
            put_uvarint(&mut buf, 1);
        }
        buf.put_u8(TypeTag::Bool as u8);
        buf.put_u8(1);
        assert_eq!(get_value(&mut buf.as_slice()), Err(DecodeError::TooDeep));
    }

    #[test]
    fn hostile_arity_rejected_before_allocation() {
        // Claim 2^50 fields in a 4-byte buffer: must fail on the count
        // check, not attempt to reserve or loop.
        let mut buf = Vec::new();
        put_uvarint(&mut buf, 1u64 << 50);
        assert!(matches!(
            get_tuple(&mut buf.as_slice()),
            Err(DecodeError::LengthOverrun { .. })
        ));
    }
}

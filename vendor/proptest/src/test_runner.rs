//! The case runner behind the `proptest!` macro, and its error/config types.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Failure of a single generated case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed property with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        Self {
            message: reason.into(),
        }
    }

    /// A rejected case (treated the same as failure here — the shim does
    /// not re-draw on rejection).
    pub fn reject(reason: impl Into<String>) -> Self {
        Self::fail(reason)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Per-test-body result used inside `proptest!`.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration; only `cases` is meaningful in the shim.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Derive the base seed for a property: stable per test name, overridable
/// with `PROPTEST_SEED` for replaying a whole run.
fn base_seed(name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse::<u64>() {
            return v;
        }
    }
    let mut h = DefaultHasher::new();
    name.hash(&mut h);
    h.finish()
}

/// Prints the inputs of the in-flight case if the body panics, so panicking
/// failures are as debuggable as `prop_assert!` failures.
pub struct PanicContext {
    description: String,
    armed: bool,
}

impl PanicContext {
    /// Arm a context describing the current case.
    pub fn new(description: String) -> Self {
        Self {
            description,
            armed: true,
        }
    }

    /// Disarm after the case body returns normally.
    pub fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for PanicContext {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!("proptest case inputs: {}", self.description);
        }
    }
}

/// Run `cfg.cases` generated cases of the property `f`, panicking (with the
/// case index, seed, and inputs) on the first failure.
pub fn run_cases<F>(cfg: ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut StdRng, &mut Vec<String>) -> TestCaseResult,
{
    let base = base_seed(name);
    for case in 0..cfg.cases {
        let seed = base ^ (case as u64).wrapping_mul(0x9e3779b97f4a7c15);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut inputs: Vec<String> = Vec::new();
        if let Err(e) = f(&mut rng, &mut inputs) {
            panic!(
                "proptest property '{name}' failed at case {case}/{cases} \
                 (PROPTEST_SEED={base}):\n  inputs: {inputs}\n  {e}",
                cases = cfg.cases,
                inputs = inputs.join(", "),
            );
        }
    }
}

/// Assert a boolean condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `left != right`\n  both: `{:?}`",
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `left != right`\n  both: `{:?}`\n {}",
            l,
            format!($($fmt)*)
        );
    }};
}

/// Top-level property-test macro: an optional
/// `#![proptest_config(..)]` followed by `#[test] fn name(pat in strategy, ..) { body }`
/// items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal item-muncher for [`proptest!`]. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(
                $cfg,
                stringify!($name),
                |__rng, __inputs| {
                    $(
                        let __v = $crate::strategy::Strategy::generate(&($strat), __rng);
                        __inputs.push(format!(
                            "{} = {:?}", stringify!($pat), &__v
                        ));
                        let $pat = __v;
                    )+
                    let mut __panic_ctx = $crate::test_runner::PanicContext::new(
                        __inputs.join(", "),
                    );
                    let __result: $crate::test_runner::TestCaseResult =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    __panic_ctx.disarm();
                    __result
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn addition_commutes(a in 0i64..1000, b in 0i64..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn vec_len_in_range(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5, "len {}", v.len());
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_info() {
        crate::test_runner::run_cases(
            ProptestConfig::with_cases(10),
            "always_fails",
            |_rng, _inputs| Err(TestCaseError::fail("nope")),
        );
    }
}

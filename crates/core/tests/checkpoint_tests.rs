//! End-to-end tests of checkpointed state transfer and log compaction:
//! a restarted host catches up from a kernel checkpoint plus the log
//! tail (O(live state)), not a full-history replay (O(records ever
//! ordered)), and every member's retained log stays bounded.

use ftlinda::{Cluster, HostId, Runtime};
use linda_tuple::{pat, tuple};
use std::time::{Duration, Instant};

/// Run `history` out/in pairs (live state stays constant), then crash,
/// restart and converge host 2, measuring the physical bytes the rejoin
/// moved and the survivors' retained-log length.
fn rejoin_cost(history: usize, every: u64) -> (u64, usize) {
    let (cluster, rts) = Cluster::builder()
        .hosts(3)
        .checkpoint_every(every)
        .no_http()
        .build();
    let ts = rts[0].create_stable_ts("main").unwrap();
    rts[0].out(ts, tuple!("keep", 1)).unwrap();
    cluster.crash(HostId(2));

    // Grow the ordered history without growing live state: every tuple
    // deposited is withdrawn again.
    for k in 0..history {
        rts[0].out(ts, tuple!("work", k as i64)).unwrap();
        rts[1].in_(ts, &pat!("work", ?int)).unwrap();
    }
    // The apply threads install checkpoints asynchronously; wait until
    // the coordinator has compacted most of the history behind it.
    let target = (2 * history as u64).saturating_sub(4 * every);
    let deadline = Instant::now() + Duration::from_secs(10);
    while rts[0].log_base() < target {
        assert!(
            Instant::now() < deadline,
            "coordinator never compacted: log_base {} < {target}",
            rts[0].log_base()
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    cluster.reset_net_stats();
    let rt2 = cluster.restart(HostId(2));
    assert!(
        rt2.wait_applied(rts[0].applied_seq(), Duration::from_secs(10)),
        "restarted host must converge"
    );
    let (_, bytes) = cluster.net_stats();

    // The restarted replica holds the live state, not the history: the
    // "keep" tuple plus the failure tuple deposited when it crashed.
    assert_eq!(rt2.stable_len(ts), Some(2), "live state transferred");
    assert_eq!(
        rt2.applied_digest().1,
        rts[0].applied_digest().1,
        "digests converge after checkpointed rejoin"
    );
    let retained = rts[0].retained_log_len();
    cluster.shutdown();
    (bytes, retained)
}

#[test]
fn rejoin_bytes_scale_with_state_not_history() {
    let every = 128;
    let (bytes_short, retained_short) = rejoin_cost(1_000, every);
    let (bytes_long, retained_long) = rejoin_cost(10_000, every);

    // 10x the history must not cost anywhere near 10x the transfer: the
    // snapshot is the (constant) live state plus a tail bounded by the
    // checkpoint interval, not the record count.
    assert!(
        bytes_long < 3 * bytes_short,
        "rejoin transfer grew with history: {bytes_short} bytes after 1k \
         records vs {bytes_long} after 10k"
    );

    // Compaction bounds every member's log memory regardless of history.
    let bound = 6 * every as usize;
    assert!(
        retained_short <= bound && retained_long <= bound,
        "retained log must stay bounded: {retained_short} / {retained_long} records"
    );
}

#[test]
fn blocked_ags_survives_checkpointed_rejoin() {
    let (cluster, rts) = Cluster::builder()
        .hosts(3)
        .checkpoint_every(16)
        .no_http()
        .build();
    let ts = rts[0].create_stable_ts("main").unwrap();

    // Park a blocked in() — it must ride the checkpoint image.
    let rt0 = rts[0].clone();
    let waiter = std::thread::spawn(move || rt0.in_(ts, &pat!("wake", ?int)).unwrap());
    let deadline = Instant::now() + Duration::from_secs(5);
    while rts[0].blocked_len() == 0 {
        assert!(Instant::now() < deadline, "in() never blocked");
        std::thread::sleep(Duration::from_millis(2));
    }

    cluster.crash(HostId(2));
    // Enough traffic to cross several checkpoint boundaries.
    for k in 0..100 {
        rts[0].out(ts, tuple!("work", k as i64)).unwrap();
        rts[1].in_(ts, &pat!("work", ?int)).unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while rts[0].checkpoint_seq().is_none() {
        assert!(Instant::now() < deadline, "no checkpoint installed");
        std::thread::sleep(Duration::from_millis(5));
    }

    let rt2 = cluster.restart(HostId(2));
    assert!(rt2.wait_applied(rts[0].applied_seq(), Duration::from_secs(10)));
    assert_eq!(
        rt2.blocked_len(),
        1,
        "blocked AGS must be present in the restored replica"
    );

    // Waking the AGS executes identically on the restored replica.
    rts[1].out(ts, tuple!("wake", 9)).unwrap();
    assert_eq!(waiter.join().unwrap(), tuple!("wake", 9));
    assert!(rt2.wait_applied(rts[0].applied_seq(), Duration::from_secs(5)));
    assert_eq!(rt2.applied_digest().1, rts[0].applied_digest().1);
    cluster.shutdown();
}

#[test]
fn checkpoint_observability_surfaces() {
    let (cluster, rts) = Cluster::builder()
        .hosts(2)
        .checkpoint_every(8)
        .no_http()
        .build();
    let ts = rts[0].create_stable_ts("main").unwrap();
    for k in 0..40 {
        rts[0].out(ts, tuple!("x", k as i64)).unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while rts[0].checkpoint_seq().is_none() {
        assert!(Instant::now() < deadline, "no checkpoint installed");
        std::thread::sleep(Duration::from_millis(5));
    }
    let metrics = rts[0].metrics_text();
    assert!(metrics.contains("ftlinda_checkpoint_seq"), "gauge exported");
    assert!(metrics.contains("ftlinda_checkpoint_bytes"));
    assert!(metrics.contains("ftlinda_checkpoint_seconds"));
    assert!(
        rts[0]
            .obs()
            .events()
            .recent()
            .iter()
            .any(|e| e.kind == "checkpoint_taken"),
        "checkpoint_taken event emitted"
    );
    cluster.shutdown();
}

#[test]
fn compaction_disabled_keeps_full_log() {
    let (cluster, rts) = Cluster::builder()
        .hosts(2)
        .checkpoint_every(8)
        .no_compaction()
        .no_http()
        .build();
    let ts = rts[0].create_stable_ts("main").unwrap();
    for k in 0..50 {
        rts[0].out(ts, tuple!("x", k as i64)).unwrap();
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    while rts[0].checkpoint_seq().is_none() {
        assert!(Instant::now() < deadline, "checkpoints still taken");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(rts[0].log_base(), 0, "no truncation without compaction");
    assert!(rts[0].retained_log_len() > 50, "full log retained");
    cluster.shutdown();
}

/// Regression guard for the seed behavior: with checkpoints disabled the
/// protocol is unchanged and rejoin replays the full log.
#[test]
fn no_checkpoints_replays_history() {
    let (cluster, rts) = Cluster::builder()
        .hosts(3)
        .no_checkpoints()
        .no_http()
        .build();
    let ts = rts[0].create_stable_ts("main").unwrap();
    cluster.crash(HostId(2));
    for k in 0..30 {
        rts[0].out(ts, tuple!("x", k as i64)).unwrap();
    }
    let rt2: Runtime = cluster.restart(HostId(2));
    assert!(rt2.wait_applied(rts[0].applied_seq(), Duration::from_secs(10)));
    assert_eq!(rt2.checkpoint_seq(), None);
    assert_eq!(rt2.log_base(), 0);
    // 30 deposits plus the failure tuple from this host's own crash.
    assert_eq!(rt2.stable_len(ts), Some(31));
    assert_eq!(rt2.applied_digest().1, rts[0].applied_digest().1);
    cluster.shutdown();
}

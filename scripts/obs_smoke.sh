#!/usr/bin/env bash
# Observability smoke test: boot a 3-member cluster via the
# obs_http_smoke example, then scrape every member's HTTP exporter with
# curl and assert the surfaces a monitoring stack depends on:
#   /metrics  — Prometheus text incl. the batch histograms and the
#               per-signature occupancy / match-probe families
#   /metrics/cluster — merged registries of every live member
#   /healthz  — live member with an applied sequence number
#   /introspect — signature census + blocked-AGS table as JSON
#   /trace/<id> — a complete cross-replica span tree; for the XTRACE id,
#               the cross-shard commit lanes (xlock/xexec/xrelease on
#               both shards of the 2-shard smoke cluster)
#   /timeseries — the bounded metrics ring with ≥ 2 snapshots
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

OBS_SMOKE_SECS="${OBS_SMOKE_SECS:-20}" \
    cargo run --quiet --release --example obs_http_smoke >"$OUT" &
SMOKE_PID=$!

# Wait for the example to print member addresses + both trace ids.
for _ in $(seq 1 120); do
    if grep -q '^XTRACE ' "$OUT" 2>/dev/null; then break; fi
    if ! kill -0 "$SMOKE_PID" 2>/dev/null; then
        echo "obs_http_smoke exited early:"; cat "$OUT"; exit 1
    fi
    sleep 0.5
done
grep -q '^XTRACE ' "$OUT" || { echo "exporter never came up:"; cat "$OUT"; exit 1; }

TRACE_ID="$(awk '/^TRACE /{print $2}' "$OUT")"
XTRACE_ID="$(awk '/^XTRACE /{print $2}' "$OUT")"
FAIL=0
while read -r _ host addr; do
    echo "--- member $host @ $addr"
    METRICS="$(curl -sfS "http://$addr/metrics")"
    for name in ftlinda_batch_size_bucket ftlinda_batch_flush_seconds_bucket \
                ftlinda_ags_total_seconds_bucket ftlinda_batch_max_bytes \
                ftlinda_events_dropped_total; do
        if ! grep -q "$name" <<<"$METRICS"; then
            echo "    MISSING $name in /metrics of member $host"; FAIL=1
        fi
    done
    # Labeled observatory families: occupancy gauge children carry
    # space+signature labels, probe counters carry the space label.
    for pat in 'ftlinda_ts_tuples{space="main",signature="<str,int>"}' \
               'ftlinda_match_probes_total{space="main"}' \
               'ftlinda_match_probe_efficiency_bp{space="main"}'; do
        if ! grep -qF "$pat" <<<"$METRICS"; then
            echo "    MISSING $pat in /metrics of member $host"; FAIL=1
        fi
    done
    CLUSTER="$(curl -sfS "http://$addr/metrics/cluster")"
    for pat in 'ftlinda_ts_tuples{space="main",signature="<str,int>"}' \
               'ftlinda_ags_completions_total' 'ftlinda_applied_seq' \
               'ftlinda_shard_tuples{shard=' 'ftlinda_shard_ags_total{shard=' \
               'ftlinda_shard_multicasts_total{shard=' 'ftlinda_shard_imbalance_bp'; do
        if ! grep -qF "$pat" <<<"$CLUSTER"; then
            echo "    MISSING $pat in /metrics/cluster of member $host"; FAIL=1
        fi
    done
    INTROSPECT="$(curl -sfS "http://$addr/introspect")"
    for pat in '"signatures":[{' '"hot_signatures"' '"blocked":[{' \
               '"guards":' '"nearest_miss":' '"match":{' \
               '"efficiency_bp":' '"cache_hits":' '"index":{'; do
        if ! grep -qF "$pat" <<<"$INTROSPECT"; then
            echo "    MISSING $pat in /introspect of member $host"; FAIL=1
        fi
    done
    HEALTH="$(curl -sfS "http://$addr/healthz")"
    grep -q '"live":true' <<<"$HEALTH" || { echo "    member $host not live: $HEALTH"; FAIL=1; }
    grep -q '"applied_seq":' <<<"$HEALTH" || { echo "    member $host no applied_seq: $HEALTH"; FAIL=1; }
    TRACE="$(curl -sfS "http://$addr/trace/$TRACE_ID")"
    for stage in '"submit"' '"deliver"' '"apply"'; do
        grep -q "$stage" <<<"$TRACE" || { echo "    member $host trace missing $stage: $TRACE"; FAIL=1; }
    done
    # Cross-shard commit trace: both shard lanes present, and every
    # multicast stage of the 2S+1 protocol recorded.
    XTRACE="$(curl -sfS "http://$addr/trace/$XTRACE_ID")"
    grep -qF '"shards":[0,1]' <<<"$XTRACE" \
        || { echo "    member $host xtrace missing shard lanes: $XTRACE"; FAIL=1; }
    for stage in '"xbegin"' '"xlock"' '"xexec"' '"xrelease"' '"xcommit"'; do
        grep -q "$stage" <<<"$XTRACE" || { echo "    member $host xtrace missing $stage"; FAIL=1; }
    done
    # Time-series ring: at least two snapshots by scrape time (200 ms
    # sampling interval in the smoke example).
    TS="$(curl -sfS "http://$addr/timeseries")"
    grep -qF '"points":[' <<<"$TS" || { echo "    member $host bad /timeseries: $TS"; FAIL=1; }
    NPOINTS="$(grep -o '"at_us"' <<<"$TS" | wc -l)"
    if [ "$NPOINTS" -lt 2 ]; then
        echo "    member $host /timeseries has $NPOINTS snapshots, want >= 2"; FAIL=1
    fi
    echo "    metrics/cluster-metrics/introspect/healthz/trace/xtrace/timeseries OK"
done < <(grep '^MEMBER ' "$OUT")

wait "$SMOKE_PID"
[ "$FAIL" -eq 0 ] || { echo "HTTP exporter smoke FAILED"; exit 1; }
echo "HTTP exporter smoke OK."

//! The fault-tolerant bag-of-tasks (paper §2.3 and §4, Figures 4/5/13).
//!
//! The bag-of-tasks (replicated worker) paradigm keeps subtask tuples in
//! tuple space; workers repeatedly withdraw a subtask, solve it, and
//! deposit a result. The paper's failure analysis: a worker that crashes
//! after the `in` but before the `out` silently *loses the subtask*.
//!
//! FT-Linda's fix, reproduced here:
//!
//! * taking a subtask atomically leaves an **in-progress tuple** tagged
//!   with the worker's host:
//!   `⟨ in("subtask", ?id, ?p) ⇒ out("inprog", self, id, p) ⟩`
//! * committing a result atomically retires the in-progress tuple:
//!   `⟨ in("inprog", self, id, p) ⇒ out("result", id, r) or true ⇒ ⟩`
//!   (the `or true` branch covers the case where a monitor already
//!   reassigned our task because we were believed dead)
//! * a **monitor** blocks on the distinguished failure tuple and moves
//!   the dead host's in-progress tuples back into subtask form:
//!   `⟨ in("failure", ?h) ⇒ ⟩` then repeatedly
//!   `⟨ in("inprog", h, ?id, ?p) ⇒ out("subtask", id, p) or true ⇒ ⟩`
//!
//! Tasks are therefore executed *at least once*; results are keyed by
//! task id, so duplicate executions are benign (first result wins).
//!
//! Termination uses a poison subtask with id −1 that each exiting worker
//! re-deposits, so one poison pill drains any number of workers.

use ftlinda::{Ags, FtError, MatchField as MF, Operand, Runtime, TsId};
use linda_tuple::{PatField, Pattern, TypeTag, Value};
use std::collections::BTreeMap;
use std::thread::JoinHandle;

/// Reserved id of the poison subtask.
pub const POISON_ID: i64 = -1;

/// Reserved "host" in the failure-tuple space used to stop monitors.
pub const MONITOR_STOP: i64 = -1;

/// Handle to a bag-of-tasks living in one stable tuple space.
#[derive(Debug, Clone, Copy)]
pub struct BagOfTasks {
    ts: TsId,
}

fn wrap(v: Value) -> Value {
    Value::Tuple(vec![v])
}

fn unwrap(v: &Value) -> Value {
    v.as_tuple().expect("wrapped payload")[0].clone()
}

impl BagOfTasks {
    /// Create the bag in a fresh (or existing) stable tuple space.
    pub fn create(rt: &Runtime, name: &str) -> Result<BagOfTasks, FtError> {
        Ok(BagOfTasks {
            ts: rt.create_stable_ts(name)?,
        })
    }

    /// Use an existing space.
    pub fn attach(ts: TsId) -> BagOfTasks {
        BagOfTasks { ts }
    }

    /// The underlying stable space.
    pub fn ts(&self) -> TsId {
        self.ts
    }

    /// Seed the bag with subtasks; returns the assigned ids (0-based,
    /// offset by `first_id`).
    pub fn seed(
        &self,
        rt: &Runtime,
        first_id: i64,
        payloads: impl IntoIterator<Item = Value>,
    ) -> Result<Vec<i64>, FtError> {
        let mut ids = Vec::new();
        for (i, p) in payloads.into_iter().enumerate() {
            let id = first_id + i as i64;
            self.add_task(rt, id, p)?;
            ids.push(id);
        }
        Ok(ids)
    }

    /// Deposit one subtask tuple.
    pub fn add_task(&self, rt: &Runtime, id: i64, payload: Value) -> Result<(), FtError> {
        rt.execute(&Ags::out_one(
            self.ts,
            vec![
                Operand::cst("subtask"),
                Operand::cst(id),
                Operand::Const(wrap(payload)),
            ],
        ))
        .map(|_| ())
    }

    /// Deposit the poison pill that drains workers (one is enough: each
    /// exiting worker re-deposits it).
    pub fn poison(&self, rt: &Runtime) -> Result<(), FtError> {
        self.add_task(rt, POISON_ID, Value::Bool(false))
    }

    /// The atomic take: withdraw a subtask, leaving an in-progress marker
    /// owned by this host. Returns `(id, payload)`.
    pub fn take_task(&self, rt: &Runtime) -> Result<(i64, Value), FtError> {
        let ags = Ags::builder()
            .guard_in(
                self.ts,
                vec![
                    MF::actual("subtask"),
                    MF::bind(TypeTag::Int),
                    MF::bind(TypeTag::Tuple),
                ],
            )
            .out(
                self.ts,
                vec![
                    Operand::cst("inprog"),
                    Operand::SelfHost,
                    Operand::formal(0),
                    Operand::formal(1),
                ],
            )
            .build()?;
        let out = rt.execute(&ags)?;
        let id = out.bindings[0].as_int().expect("task id");
        Ok((id, unwrap(&out.bindings[1])))
    }

    /// The atomic commit: retire this host's in-progress marker for `id`
    /// and deposit the result. Returns `false` if a monitor had already
    /// reassigned the task (our marker was gone) — the result is then
    /// discarded, someone else will redo the task.
    pub fn commit_result(
        &self,
        rt: &Runtime,
        id: i64,
        payload: Value,
        result: Value,
    ) -> Result<bool, FtError> {
        let me = rt.host().0 as i64;
        let ags = Ags::builder()
            .guard_in(
                self.ts,
                vec![
                    MF::actual("inprog"),
                    MF::actual(me),
                    MF::actual(id),
                    MF::Expr(Operand::Const(wrap(payload))),
                ],
            )
            .out(
                self.ts,
                vec![
                    Operand::cst("result"),
                    Operand::cst(id),
                    Operand::Const(wrap(result)),
                ],
            )
            .or()
            .guard_true()
            .build()?;
        Ok(rt.execute(&ags)?.branch == 0)
    }

    /// Retire a poison in-progress marker, re-depositing the pill for the
    /// next worker.
    pub(crate) fn pass_on_poison(&self, rt: &Runtime) -> Result<(), FtError> {
        let me = rt.host().0 as i64;
        let ags = Ags::builder()
            .guard_in(
                self.ts,
                vec![
                    MF::actual("inprog"),
                    MF::actual(me),
                    MF::actual(POISON_ID),
                    MF::bind(TypeTag::Tuple),
                ],
            )
            .out(
                self.ts,
                vec![
                    Operand::cst("subtask"),
                    Operand::cst(POISON_ID),
                    Operand::formal(0),
                ],
            )
            .or()
            .guard_true()
            .build()?;
        rt.execute(&ags).map(|_| ())
    }

    /// Spawn a fault-tolerant worker thread. Returns the number of tasks
    /// it completed (committed).
    pub fn spawn_worker<F>(&self, rt: Runtime, f: F) -> JoinHandle<usize>
    where
        F: Fn(&Value) -> Value + Send + 'static,
    {
        let bag = *self;
        std::thread::spawn(move || {
            let mut done = 0usize;
            loop {
                let Ok((id, payload)) = bag.take_task(&rt) else {
                    return done; // runtime shut down
                };
                if id == POISON_ID {
                    let _ = bag.pass_on_poison(&rt);
                    return done;
                }
                let result = f(&payload);
                match bag.commit_result(&rt, id, payload, result) {
                    Ok(true) => done += 1,
                    Ok(false) => {} // monitor reassigned it; discard
                    Err(_) => return done,
                }
            }
        })
    }

    /// Spawn a **non-fault-tolerant** worker in the style of plain Linda
    /// (paper Figure 4): the subtask is withdrawn with no in-progress
    /// marker, so a crash mid-task loses it. Baseline for experiment E5.
    pub fn spawn_worker_unsafe<F>(&self, rt: Runtime, f: F) -> JoinHandle<usize>
    where
        F: Fn(&Value) -> Value + Send + 'static,
    {
        let bag = *self;
        std::thread::spawn(move || {
            let mut done = 0usize;
            let pat = Pattern::new(vec![
                PatField::Actual(Value::Str("subtask".into())),
                PatField::Formal(TypeTag::Int),
                PatField::Formal(TypeTag::Tuple),
            ]);
            loop {
                let Ok(t) = rt.in_(bag.ts, &pat) else {
                    return done;
                };
                let id = t[1].as_int().expect("id");
                if id == POISON_ID {
                    let _ = rt.out(bag.ts, t);
                    return done;
                }
                let result = f(&unwrap(&t[2]));
                if rt
                    .out(
                        bag.ts,
                        linda_tuple::Tuple::new(vec![
                            Value::Str("result".into()),
                            Value::Int(id),
                            wrap(result),
                        ]),
                    )
                    .is_err()
                {
                    return done;
                }
                done += 1;
            }
        })
    }

    /// Spawn the recovery monitor (paper Figure 13). It blocks on failure
    /// tuples; for each failed host it moves that host's in-progress
    /// tuples back into subtask form. Returns the number of failures
    /// handled when stopped via [`BagOfTasks::stop_monitor`].
    pub fn spawn_monitor(&self, rt: Runtime) -> JoinHandle<u32> {
        let bag = *self;
        std::thread::spawn(move || {
            let mut handled = 0u32;
            loop {
                // Claim the next failure tuple (exactly one monitor
                // cluster-wide wins each).
                let take_failure = match Ags::in_one(
                    bag.ts,
                    vec![
                        MF::actual(ftlinda::FAILURE_TUPLE_HEAD),
                        MF::bind(TypeTag::Int),
                    ],
                ) {
                    Ok(a) => a,
                    Err(_) => return handled,
                };
                let Ok(out) = rt.execute(&take_failure) else {
                    return handled;
                };
                let h = out.bindings[0].as_int().expect("host id");
                if h == MONITOR_STOP {
                    return handled;
                }
                // Reassign every in-progress task of the dead host.
                let reassign = Ags::builder()
                    .guard_in(
                        bag.ts,
                        vec![
                            MF::actual("inprog"),
                            MF::actual(h),
                            MF::bind(TypeTag::Int),
                            MF::bind(TypeTag::Tuple),
                        ],
                    )
                    .out(
                        bag.ts,
                        vec![
                            Operand::cst("subtask"),
                            Operand::formal(0),
                            Operand::formal(1),
                        ],
                    )
                    .or()
                    .guard_true()
                    .build()
                    .expect("static");
                loop {
                    match rt.execute(&reassign) {
                        Ok(o) if o.branch == 0 => continue,
                        Ok(_) => break,
                        Err(_) => return handled,
                    }
                }
                handled += 1;
            }
        })
    }

    /// Stop one monitor by feeding it a sentinel "failure".
    pub fn stop_monitor(&self, rt: &Runtime) -> Result<(), FtError> {
        rt.execute(&Ags::out_one(
            self.ts,
            vec![
                Operand::cst(ftlinda::FAILURE_TUPLE_HEAD),
                Operand::cst(MONITOR_STOP),
            ],
        ))
        .map(|_| ())
    }

    /// Withdraw the result of task `id` (blocking).
    pub fn take_result(&self, rt: &Runtime, id: i64) -> Result<Value, FtError> {
        let p = Pattern::new(vec![
            PatField::Actual(Value::Str("result".into())),
            PatField::Actual(Value::Int(id)),
            PatField::Formal(TypeTag::Tuple),
        ]);
        let t = rt.in_(self.ts, &p)?;
        Ok(unwrap(&t[2]))
    }

    /// Collect results for all `ids` (blocking), in id order.
    pub fn collect(&self, rt: &Runtime, ids: &[i64]) -> Result<BTreeMap<i64, Value>, FtError> {
        let mut out = BTreeMap::new();
        for &id in ids {
            out.insert(id, self.take_result(rt, id)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftlinda::{Cluster, HostId};
    use std::time::Duration;

    fn sq(v: &Value) -> Value {
        let x = v.as_int().unwrap();
        Value::Int(x * x)
    }

    #[test]
    fn happy_path_all_tasks_complete() {
        let (cluster, rts) = Cluster::new(3);
        let bag = BagOfTasks::create(&rts[0], "bag").unwrap();
        let ids = bag.seed(&rts[0], 0, (0..12).map(Value::Int)).unwrap();
        let workers: Vec<_> = rts
            .iter()
            .map(|rt| bag.spawn_worker(rt.clone(), sq))
            .collect();
        let results = bag.collect(&rts[0], &ids).unwrap();
        assert_eq!(results.len(), 12);
        for (id, v) in &results {
            assert_eq!(v.as_int().unwrap(), id * id);
        }
        bag.poison(&rts[0]).unwrap();
        let total: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(total, 12);
        cluster.shutdown();
    }

    #[test]
    fn single_poison_drains_all_workers() {
        let (cluster, rts) = Cluster::new(2);
        let bag = BagOfTasks::create(&rts[0], "bag").unwrap();
        let workers: Vec<_> = (0..4)
            .map(|i| bag.spawn_worker(rts[i % 2].clone(), sq))
            .collect();
        bag.poison(&rts[0]).unwrap();
        for w in workers {
            assert_eq!(w.join().unwrap(), 0);
        }
        cluster.shutdown();
    }

    #[test]
    fn crash_recovery_completes_all_tasks_exactly_once_in_results() {
        let (cluster, rts) = Cluster::new(3);
        let bag = BagOfTasks::create(&rts[0], "bag").unwrap();

        // Slow tasks so the crashed worker dies holding one.
        let slow = |v: &Value| {
            std::thread::sleep(Duration::from_millis(30));
            sq(v)
        };
        let ids = bag.seed(&rts[0], 0, (0..8).map(Value::Int)).unwrap();

        // Monitor on host 0, workers on hosts 1 and 2.
        let monitor = bag.spawn_monitor(rts[0].clone());
        let _w1 = bag.spawn_worker(rts[1].clone(), slow);
        let _w2 = bag.spawn_worker(rts[2].clone(), slow);

        // Let host 2 grab work, then kill it mid-task.
        std::thread::sleep(Duration::from_millis(40));
        cluster.crash(HostId(2));

        // All tasks still complete (host 1 + recovery).
        let results = bag.collect(&rts[0], &ids).unwrap();
        assert_eq!(results.len(), 8);
        for (id, v) in &results {
            assert_eq!(v.as_int().unwrap(), id * id);
        }
        // No in-progress tuples left for the dead host once the monitor
        // has run and host 1 drained the bag.
        bag.stop_monitor(&rts[0]).unwrap();
        let handled = monitor.join().unwrap();
        assert!(handled >= 1, "monitor recovered the crashed host");
        bag.poison(&rts[0]).unwrap();
        cluster.shutdown();
    }

    #[test]
    fn unsafe_worker_loses_task_on_crash() {
        // The paper's Figure 4 failure: without the in-progress marker a
        // crash strands the task forever.
        let (cluster, rts) = Cluster::new(3);
        let bag = BagOfTasks::create(&rts[0], "bag").unwrap();
        let ids = bag.seed(&rts[0], 0, (0..4).map(Value::Int)).unwrap();

        let very_slow = |v: &Value| {
            std::thread::sleep(Duration::from_millis(400));
            sq(v)
        };
        // One unsafe worker on host 2 grabs a task and dies mid-work.
        let _w = bag.spawn_worker_unsafe(rts[2].clone(), very_slow);
        std::thread::sleep(Duration::from_millis(100));
        cluster.crash(HostId(2));
        // A monitor can't help: there is no in-progress tuple to recover.
        let monitor = bag.spawn_monitor(rts[0].clone());
        // Fast worker on host 1 drains what's left.
        let _w1 = bag.spawn_worker(rts[1].clone(), sq);
        std::thread::sleep(Duration::from_millis(300));
        // Exactly one task is missing.
        let present: Vec<i64> = ids
            .iter()
            .copied()
            .filter(|id| {
                let p = Pattern::new(vec![
                    PatField::Actual(Value::Str("result".into())),
                    PatField::Actual(Value::Int(*id)),
                    PatField::Formal(TypeTag::Tuple),
                ]);
                matches!(rts[0].rdp(bag.ts(), &p), Ok(Some(_)))
            })
            .collect();
        assert_eq!(present.len(), 3, "one task lost forever: {present:?}");
        bag.stop_monitor(&rts[0]).unwrap();
        monitor.join().unwrap();
        bag.poison(&rts[0]).unwrap();
        cluster.shutdown();
    }
}

/root/repo/target/debug/deps/fig_distvar-194102c27088e6e4.d: crates/bench/benches/fig_distvar.rs

/root/repo/target/debug/deps/fig_distvar-194102c27088e6e4: crates/bench/benches/fig_distvar.rs

crates/bench/benches/fig_distvar.rs:

/root/repo/target/debug/deps/linda_bench-25d1b5ba5eb20a52.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liblinda_bench-25d1b5ba5eb20a52.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liblinda_bench-25d1b5ba5eb20a52.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

/root/repo/target/release/deps/ftlinda_kernel-383e1be9d01b8cd3.d: crates/kernel/src/lib.rs crates/kernel/src/exec.rs crates/kernel/src/kernel.rs crates/kernel/src/proto.rs

/root/repo/target/release/deps/libftlinda_kernel-383e1be9d01b8cd3.rlib: crates/kernel/src/lib.rs crates/kernel/src/exec.rs crates/kernel/src/kernel.rs crates/kernel/src/proto.rs

/root/repo/target/release/deps/libftlinda_kernel-383e1be9d01b8cd3.rmeta: crates/kernel/src/lib.rs crates/kernel/src/exec.rs crates/kernel/src/kernel.rs crates/kernel/src/proto.rs

crates/kernel/src/lib.rs:
crates/kernel/src/exec.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/proto.rs:

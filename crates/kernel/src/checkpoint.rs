//! Kernel checkpoint images: codec serialization of the replicated
//! state machine.
//!
//! A checkpoint captures everything a replica needs to stand in for a
//! full log replay up to the sequence number it was taken at: the name →
//! space-id table, every stable space's tuples in insertion order, the
//! blocked-AGS queue in arrival order, and the applied sequence number.
//! The image also records the kernel digest at capture time; a restore
//! recomputes the digest from the rebuilt state and refuses the image on
//! mismatch — the round-trip-equals-digest guarantee the convergence
//! tests lean on.
//!
//! Deliberately **not** serialized: scratch spaces (owner-local,
//! volatile) and observability handles (per-host). Internal allocation
//! counters (store sequence numbers, blocked-queue ids) are renumbered
//! densely on restore; only their *relative* order is semantically
//! meaningful (oldest-match and FIFO-fair wakeup), and relative order is
//! preserved, so a restored replica and a log-replaying replica evolve
//! identically from the checkpoint seq onward.

use bytes::{Buf, BufMut, Bytes};
use ftlinda_ags::{decode_ags, encode_ags, Ags, WireError};
use linda_tuple::{get_tuple, get_uvarint, put_tuple, put_uvarint, DecodeError, Tuple};
use std::fmt;

/// A serialized kernel state image, as produced by
/// [`crate::Kernel::checkpoint`] and consumed by
/// [`crate::Kernel::restore`]. This is the `consul_sim::CheckpointImage`
/// the ordering layer ships opaquely in `SeqMsg::Snapshot`.
pub type KernelCheckpoint = consul_sim::CheckpointImage;

/// Why a checkpoint image could not be restored.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// The image bytes start with an unknown format version.
    BadVersion(u8),
    /// A codec-level decode failure (truncated or corrupt image).
    Codec(DecodeError),
    /// An embedded blocked AGS failed to decode.
    Ags(WireError),
    /// The state rebuilt from the image hashes to a different digest
    /// than the one recorded at capture time.
    DigestMismatch {
        /// Digest recorded in the image.
        expected: u64,
        /// Digest of the rebuilt state.
        actual: u64,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadVersion(v) => write!(f, "unknown checkpoint version {v}"),
            CheckpointError::Codec(e) => write!(f, "checkpoint decode failed: {e:?}"),
            CheckpointError::Ags(e) => write!(f, "blocked AGS decode failed: {e:?}"),
            CheckpointError::DigestMismatch { expected, actual } => write!(
                f,
                "restored state digest {actual:#x} != recorded {expected:#x}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<DecodeError> for CheckpointError {
    fn from(e: DecodeError) -> Self {
        CheckpointError::Codec(e)
    }
}

impl From<WireError> for CheckpointError {
    fn from(e: WireError) -> Self {
        CheckpointError::Ags(e)
    }
}

/// One blocked AGS as it appears in an image. The guard-index keys are
/// not serialized; the restorer recomputes them with `guard_keys`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BlockedImage {
    pub seq: u64,
    pub origin: u32,
    pub local: u64,
    pub ags: Ags,
}

/// The neutral, field-by-field view of kernel state that the codec
/// serializes. `Kernel` converts itself to and from this.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct KernelImage {
    pub applied: u64,
    pub digest: u64,
    pub next_ts: u32,
    /// `(name, id)` pairs, sorted by name (the kernel's map order).
    pub names: Vec<(String, u32)>,
    /// `(id, tuples-in-insertion-order)` per stable space, ascending id.
    pub spaces: Vec<(u32, Vec<Tuple>)>,
    /// Blocked AGSs in arrival (wakeup-priority) order.
    pub blocked: Vec<BlockedImage>,
}

const VERSION: u8 = 1;

pub(crate) fn encode_image(img: &KernelImage) -> Bytes {
    let mut buf = Vec::with_capacity(64);
    buf.put_u8(VERSION);
    put_uvarint(&mut buf, img.applied);
    put_uvarint(&mut buf, img.digest);
    put_uvarint(&mut buf, img.next_ts as u64);
    put_uvarint(&mut buf, img.names.len() as u64);
    for (name, id) in &img.names {
        put_uvarint(&mut buf, name.len() as u64);
        buf.put_slice(name.as_bytes());
        put_uvarint(&mut buf, *id as u64);
    }
    put_uvarint(&mut buf, img.spaces.len() as u64);
    for (id, tuples) in &img.spaces {
        put_uvarint(&mut buf, *id as u64);
        put_uvarint(&mut buf, tuples.len() as u64);
        for t in tuples {
            put_tuple(&mut buf, t);
        }
    }
    put_uvarint(&mut buf, img.blocked.len() as u64);
    for b in &img.blocked {
        put_uvarint(&mut buf, b.seq);
        put_uvarint(&mut buf, b.origin as u64);
        put_uvarint(&mut buf, b.local);
        let ags = encode_ags(&b.ags);
        put_uvarint(&mut buf, ags.len() as u64);
        buf.put_slice(&ags);
    }
    Bytes::from(buf)
}

pub(crate) fn decode_image(mut buf: &[u8]) -> Result<KernelImage, CheckpointError> {
    if buf.is_empty() {
        return Err(DecodeError::UnexpectedEof.into());
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let applied = get_uvarint(&mut buf)?;
    let digest = get_uvarint(&mut buf)?;
    let next_ts = get_uvarint(&mut buf)? as u32;
    let n_names = get_uvarint(&mut buf)? as usize;
    let mut names = Vec::with_capacity(n_names);
    for _ in 0..n_names {
        let len = get_uvarint(&mut buf)? as usize;
        if len > buf.len() {
            return Err(DecodeError::LengthOverrun {
                declared: len,
                remaining: buf.len(),
            }
            .into());
        }
        let name = std::str::from_utf8(&buf[..len])
            .map_err(|_| DecodeError::BadUtf8)?
            .to_owned();
        buf.advance(len);
        let id = get_uvarint(&mut buf)? as u32;
        names.push((name, id));
    }
    let n_spaces = get_uvarint(&mut buf)? as usize;
    let mut spaces = Vec::with_capacity(n_spaces);
    for _ in 0..n_spaces {
        let id = get_uvarint(&mut buf)? as u32;
        let n_tuples = get_uvarint(&mut buf)? as usize;
        let mut tuples = Vec::with_capacity(n_tuples.min(1024));
        for _ in 0..n_tuples {
            tuples.push(get_tuple(&mut buf)?);
        }
        spaces.push((id, tuples));
    }
    let n_blocked = get_uvarint(&mut buf)? as usize;
    let mut blocked = Vec::with_capacity(n_blocked.min(1024));
    for _ in 0..n_blocked {
        let seq = get_uvarint(&mut buf)?;
        let origin = get_uvarint(&mut buf)? as u32;
        let local = get_uvarint(&mut buf)?;
        let len = get_uvarint(&mut buf)? as usize;
        if len > buf.len() {
            return Err(DecodeError::LengthOverrun {
                declared: len,
                remaining: buf.len(),
            }
            .into());
        }
        let ags = decode_ags(&buf[..len])?;
        buf.advance(len);
        blocked.push(BlockedImage {
            seq,
            origin,
            local,
            ags,
        });
    }
    Ok(KernelImage {
        applied,
        digest,
        next_ts,
        names,
        spaces,
        blocked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftlinda_ags::{MatchField, TsId};
    use linda_tuple::tuple;

    fn image() -> KernelImage {
        KernelImage {
            applied: 42,
            digest: 0xdead_beef_cafe,
            next_ts: 2,
            names: vec![("a".into(), 0), ("b".into(), 1)],
            spaces: vec![(0, vec![tuple!("x", 1), tuple!("y", 2.5)]), (1, Vec::new())],
            blocked: vec![BlockedImage {
                seq: 7,
                origin: 3,
                local: 9,
                ags: Ags::in_one(
                    TsId(0),
                    vec![
                        MatchField::actual("job"),
                        MatchField::bind(linda_tuple::TypeTag::Int),
                    ],
                )
                .unwrap(),
            }],
        }
    }

    #[test]
    fn image_roundtrip() {
        let img = image();
        let bytes = encode_image(&img);
        assert_eq!(decode_image(&bytes).unwrap(), img);
    }

    #[test]
    fn empty_image_rejected() {
        assert!(matches!(
            decode_image(&[]),
            Err(CheckpointError::Codec(DecodeError::UnexpectedEof))
        ));
    }

    #[test]
    fn bad_version_rejected() {
        assert!(matches!(
            decode_image(&[99]),
            Err(CheckpointError::BadVersion(99))
        ));
    }

    #[test]
    fn truncated_image_rejected() {
        let bytes = encode_image(&image());
        for cut in 1..bytes.len() {
            assert!(
                decode_image(&bytes[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }
}

//! Tests for the `RunProgram` convenience: compile-and-run in one call.

use ft_lcc::Compiler;
use ftlinda::Cluster;
use linda_repro::RunProgram;
use linda_tuple::{pat, tuple};

#[test]
fn run_on_creates_spaces_and_executes() {
    let (cluster, rts) = Cluster::new(3);
    let prog = Compiler::new()
        .compile(
            r#"
            stable a;
            stable b;
            out(a, "x", 1);
            out(b, "y", 2.5);
            < in(a, "x", ?int v) => out(b, "moved", v * 100) >
        "#,
        )
        .unwrap();
    let outcomes = prog.run_on(&rts).unwrap();
    assert_eq!(outcomes.len(), 3);
    assert_eq!(outcomes[2].bindings, vec![linda_tuple::Value::Int(1)]);
    // Space ids were aligned by declaration order.
    let b = rts[1].create_stable_ts("b").unwrap();
    assert_eq!(
        rts[2].rd(b, &pat!("moved", ?int)).unwrap(),
        tuple!("moved", 100)
    );
    assert_eq!(rts[0].rd(b, &pat!("y", 2.5)).unwrap(), tuple!("y", 2.5));
    cluster.shutdown();
}

#[test]
fn run_on_reports_statement_failures() {
    let (cluster, rts) = Cluster::new(2);
    let prog = Compiler::new()
        .compile(
            r#"
            stable s;
            < true => in(s, "missing") >
        "#,
        )
        .unwrap();
    assert!(prog.run_on(&rts).is_err());
    cluster.shutdown();
}

//! # linda-repro — FT-Linda, reproduced in Rust
//!
//! Workspace root crate: re-exports the whole reproduction so examples
//! and integration tests can use one import, and downstream users can
//! depend on a single crate.
//!
//! * [`ftlinda`] — the FT-Linda runtime (stable tuple spaces, AGSs).
//! * [`linda_space`] — classic Linda (local concurrent tuple space).
//! * [`linda_tuple`] — tuples, patterns, signatures, codec.
//! * [`ftlinda_ags`] — the AGS intermediate representation.
//! * [`consul_sim`] — simulated network + ordered atomic multicast.
//! * [`ftlinda_kernel`] — the replicated TS state machine.
//! * [`linda_paradigms`] — fault-tolerant programming paradigms.
//! * [`ft_lcc`] — the FT-lcc-style DSL precompiler.
//!
//! See `README.md` for a guided tour and `DESIGN.md`/`EXPERIMENTS.md`
//! for the reproduction methodology.

pub use consul_sim;
pub use ft_lcc;
pub use ftlinda;
pub use ftlinda_ags;
pub use ftlinda_kernel;
pub use linda_paradigms;
pub use linda_space;
pub use linda_tuple;

use ftlinda::{AgsOutcome, FtError, Runtime};

/// Extension for running compiled FT-lcc programs against a live cluster.
pub trait RunProgram {
    /// Create this program's declared stable spaces (in declaration
    /// order, so DSL ids line up with runtime ids) and execute its
    /// statements in source order, round-robining across `rts`.
    /// Returns the outcome of every statement.
    fn run_on(&self, rts: &[Runtime]) -> Result<Vec<AgsOutcome>, FtError>;
}

impl RunProgram for ft_lcc::Program {
    fn run_on(&self, rts: &[Runtime]) -> Result<Vec<AgsOutcome>, FtError> {
        assert!(!rts.is_empty(), "need at least one runtime");
        for name in &self.declared_stables {
            rts[0].create_stable_ts(name)?;
        }
        self.statements
            .iter()
            .enumerate()
            .map(|(i, ags)| rts[i % rts.len()].execute(ags))
            .collect()
    }
}

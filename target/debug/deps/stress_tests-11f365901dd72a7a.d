/root/repo/target/debug/deps/stress_tests-11f365901dd72a7a.d: crates/consul/tests/stress_tests.rs Cargo.toml

/root/repo/target/debug/deps/libstress_tests-11f365901dd72a7a.rmeta: crates/consul/tests/stress_tests.rs Cargo.toml

crates/consul/tests/stress_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! Fault-tolerant divide-and-conquer (paper §4.1).
//!
//! "The basic structure of divide and conquer is similar to the
//! bag-of-tasks … The difference comes in the actions of the worker.
//! Here, upon withdrawing a subtask tuple, the worker first determines if
//! the subtask is small enough … If so, the task is performed and the
//! result tuple deposited. If not, the worker divides the task and
//! deposits the new subtasks back into the bag."
//!
//! The demonstration workload is adaptive quadrature: integrate f over
//! `[lo, hi]`; an interval whose two-panel estimate is close enough to
//! its one-panel estimate contributes to a shared accumulator, otherwise
//! it splits. Both the split and the accumulate are single AGSs that also
//! maintain an `("outstanding", n)` counter, so
//! `rd("outstanding", 0)` is a crash-safe termination barrier:
//!
//! * split: `⟨ in("inprog", me, lo, hi) ⇒ out("task", lo, mid);
//!   out("task", mid, hi); in("outstanding", ?n); out("outstanding", n+1) ⟩`
//! * accumulate: `⟨ in("inprog", me, lo, hi) ⇒ in("acc", ?s);
//!   out("acc", s + v); in("outstanding", ?n); out("outstanding", n−1) ⟩`
//!
//! Crash recovery reuses the bag-of-tasks monitor idiom: in-progress
//! tuples of a failed host move back to task form.

use ftlinda::{Ags, FtError, MatchField as MF, Operand, Runtime, TsId};
use linda_tuple::{PatField, Pattern, TypeTag, Value};
use std::thread::JoinHandle;

/// A divide-and-conquer integration job over one stable tuple space.
#[derive(Debug, Clone, Copy)]
pub struct DivideConquer {
    ts: TsId,
}

impl DivideConquer {
    /// Create the job space and seed the root interval + accumulator.
    pub fn create(rt: &Runtime, name: &str, lo: f64, hi: f64) -> Result<DivideConquer, FtError> {
        let ts = rt.create_stable_ts(name)?;
        let dc = DivideConquer { ts };
        rt.execute(&Ags::out_one(
            ts,
            vec![Operand::cst("acc"), Operand::cst(0.0f64)],
        ))?;
        rt.execute(&Ags::out_one(
            ts,
            vec![Operand::cst("outstanding"), Operand::cst(1i64)],
        ))?;
        rt.execute(&Ags::out_one(
            ts,
            vec![Operand::cst("task"), Operand::cst(lo), Operand::cst(hi)],
        ))?;
        Ok(dc)
    }

    /// The underlying space.
    pub fn ts(&self) -> TsId {
        self.ts
    }

    /// Atomically withdraw a task interval, leaving an in-progress marker.
    pub fn take(&self, rt: &Runtime) -> Result<(f64, f64), FtError> {
        let ags = Ags::builder()
            .guard_in(
                self.ts,
                vec![
                    MF::actual("task"),
                    MF::bind(TypeTag::Float),
                    MF::bind(TypeTag::Float),
                ],
            )
            .out(
                self.ts,
                vec![
                    Operand::cst("inprog"),
                    Operand::SelfHost,
                    Operand::formal(0),
                    Operand::formal(1),
                ],
            )
            .build()?;
        let o = rt.execute(&ags)?;
        Ok((
            o.bindings[0].as_float().expect("lo"),
            o.bindings[1].as_float().expect("hi"),
        ))
    }

    /// Atomically split `[lo, hi]` at `mid`, retiring the in-progress
    /// marker and bumping the outstanding count. Returns `false` if a
    /// monitor already reassigned the interval.
    pub fn split(&self, rt: &Runtime, lo: f64, hi: f64, mid: f64) -> Result<bool, FtError> {
        let me = rt.host().0 as i64;
        let ags = Ags::builder()
            .guard_in(
                self.ts,
                vec![
                    MF::actual("inprog"),
                    MF::actual(me),
                    MF::actual(lo),
                    MF::actual(hi),
                ],
            )
            .out(
                self.ts,
                vec![Operand::cst("task"), Operand::cst(lo), Operand::cst(mid)],
            )
            .out(
                self.ts,
                vec![Operand::cst("task"), Operand::cst(mid), Operand::cst(hi)],
            )
            .in_(
                self.ts,
                vec![MF::actual("outstanding"), MF::bind(TypeTag::Int)],
            )
            .out(
                self.ts,
                vec![Operand::cst("outstanding"), Operand::formal(0).add(1)],
            )
            .or()
            .guard_true()
            .build()?;
        Ok(rt.execute(&ags)?.branch == 0)
    }

    /// Atomically fold a finished interval's contribution into the
    /// accumulator and decrement the outstanding count. Returns `false`
    /// if a monitor already reassigned the interval.
    pub fn accumulate(&self, rt: &Runtime, lo: f64, hi: f64, v: f64) -> Result<bool, FtError> {
        let me = rt.host().0 as i64;
        let ags = Ags::builder()
            .guard_in(
                self.ts,
                vec![
                    MF::actual("inprog"),
                    MF::actual(me),
                    MF::actual(lo),
                    MF::actual(hi),
                ],
            )
            .in_(self.ts, vec![MF::actual("acc"), MF::bind(TypeTag::Float)])
            .out(
                self.ts,
                vec![Operand::cst("acc"), Operand::formal(0).add(Operand::cst(v))],
            )
            .in_(
                self.ts,
                vec![MF::actual("outstanding"), MF::bind(TypeTag::Int)],
            )
            .out(
                self.ts,
                vec![Operand::cst("outstanding"), Operand::formal(1).sub(1)],
            )
            .or()
            .guard_true()
            .build()?;
        Ok(rt.execute(&ags)?.branch == 0)
    }

    /// Block until all intervals are resolved, then read the integral.
    pub fn wait_result(&self, rt: &Runtime) -> Result<f64, FtError> {
        rt.rd(
            self.ts,
            &Pattern::new(vec![
                PatField::Actual(Value::Str("outstanding".into())),
                PatField::Actual(Value::Int(0)),
            ]),
        )?;
        let t = rt.rd(
            self.ts,
            &Pattern::new(vec![
                PatField::Actual(Value::Str("acc".into())),
                PatField::Formal(TypeTag::Float),
            ]),
        )?;
        Ok(t[1].as_float().expect("acc"))
    }

    /// Spawn a worker integrating `f` with tolerance `tol`. Exits when the
    /// outstanding count reaches zero.
    pub fn spawn_worker<F>(&self, rt: Runtime, f: F, tol: f64) -> JoinHandle<usize>
    where
        F: Fn(f64) -> f64 + Send + 'static,
    {
        let dc = *self;
        std::thread::spawn(move || {
            let mut done = 0usize;
            let take_or_done = Ags::builder()
                .guard_in(
                    dc.ts,
                    vec![
                        MF::actual("task"),
                        MF::bind(TypeTag::Float),
                        MF::bind(TypeTag::Float),
                    ],
                )
                .out(
                    dc.ts,
                    vec![
                        Operand::cst("inprog"),
                        Operand::SelfHost,
                        Operand::formal(0),
                        Operand::formal(1),
                    ],
                )
                .or()
                .guard_rd(dc.ts, vec![MF::actual("outstanding"), MF::actual(0i64)])
                .build()
                .expect("static");
            loop {
                // Disjunction: take a task, or observe global completion.
                let Ok(o) = rt.execute(&take_or_done) else {
                    return done;
                };
                if o.branch == 1 {
                    return done;
                }
                let lo = o.bindings[0].as_float().expect("lo");
                let hi = o.bindings[1].as_float().expect("hi");
                let mid = 0.5 * (lo + hi);
                let whole = simpson(&f, lo, hi);
                let halves = simpson(&f, lo, mid) + simpson(&f, mid, hi);
                let ok = if (whole - halves).abs() <= tol * (hi - lo) {
                    dc.accumulate(&rt, lo, hi, halves)
                } else {
                    dc.split(&rt, lo, hi, mid)
                };
                match ok {
                    Ok(true) => done += 1,
                    Ok(false) => {}
                    Err(_) => return done,
                }
            }
        })
    }

    /// Spawn the recovery monitor (same idiom as the bag of tasks).
    pub fn spawn_monitor(&self, rt: Runtime) -> JoinHandle<u32> {
        let dc = *self;
        std::thread::spawn(move || {
            let mut handled = 0u32;
            loop {
                let take_failure = Ags::in_one(
                    dc.ts,
                    vec![
                        MF::actual(ftlinda::FAILURE_TUPLE_HEAD),
                        MF::bind(TypeTag::Int),
                    ],
                )
                .expect("static");
                let Ok(out) = rt.execute(&take_failure) else {
                    return handled;
                };
                let h = out.bindings[0].as_int().expect("host");
                if h == crate::bot::MONITOR_STOP {
                    return handled;
                }
                let reassign = Ags::builder()
                    .guard_in(
                        dc.ts,
                        vec![
                            MF::actual("inprog"),
                            MF::actual(h),
                            MF::bind(TypeTag::Float),
                            MF::bind(TypeTag::Float),
                        ],
                    )
                    .out(
                        dc.ts,
                        vec![Operand::cst("task"), Operand::formal(0), Operand::formal(1)],
                    )
                    .or()
                    .guard_true()
                    .build()
                    .expect("static");
                loop {
                    match rt.execute(&reassign) {
                        Ok(o) if o.branch == 0 => continue,
                        Ok(_) => break,
                        Err(_) => return handled,
                    }
                }
                handled += 1;
            }
        })
    }

    /// Stop one monitor via the sentinel failure tuple.
    pub fn stop_monitor(&self, rt: &Runtime) -> Result<(), FtError> {
        rt.execute(&Ags::out_one(
            self.ts,
            vec![
                Operand::cst(ftlinda::FAILURE_TUPLE_HEAD),
                Operand::cst(crate::bot::MONITOR_STOP),
            ],
        ))
        .map(|_| ())
    }
}

/// Simpson's rule on one panel.
fn simpson(f: &impl Fn(f64) -> f64, lo: f64, hi: f64) -> f64 {
    let mid = 0.5 * (lo + hi);
    (hi - lo) / 6.0 * (f(lo) + 4.0 * f(mid) + f(hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftlinda::{Cluster, HostId};
    use std::time::Duration;

    #[test]
    fn integrates_polynomial_exactly() {
        let (cluster, rts) = Cluster::new(2);
        let dc = DivideConquer::create(&rts[0], "quad", 0.0, 2.0).unwrap();
        let workers: Vec<_> = rts
            .iter()
            .map(|rt| dc.spawn_worker(rt.clone(), |x| 3.0 * x * x, 1e-9))
            .collect();
        let v = dc.wait_result(&rts[0]).unwrap();
        assert!((v - 8.0).abs() < 1e-6, "∫3x² over [0,2] = 8, got {v}");
        for w in workers {
            w.join().unwrap();
        }
        cluster.shutdown();
    }

    #[test]
    fn integrates_transcendental_with_splitting() {
        let (cluster, rts) = Cluster::new(3);
        let dc = DivideConquer::create(&rts[0], "quad", 0.0, std::f64::consts::PI).unwrap();
        let workers: Vec<_> = rts
            .iter()
            .map(|rt| dc.spawn_worker(rt.clone(), f64::sin, 1e-10))
            .collect();
        let v = dc.wait_result(&rts[0]).unwrap();
        assert!((v - 2.0).abs() < 1e-6, "∫sin over [0,π] = 2, got {v}");
        let splits: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert!(splits > 1, "adaptive refinement must have split");
        cluster.shutdown();
    }

    #[test]
    fn survives_worker_host_crash() {
        let (cluster, rts) = Cluster::new(3);
        let dc = DivideConquer::create(&rts[0], "quad", 0.0, 4.0).unwrap();
        let monitor = dc.spawn_monitor(rts[0].clone());
        // Slow integrand so host 2 dies mid-interval.
        let slow = |x: f64| {
            std::thread::sleep(Duration::from_micros(300));
            x
        };
        let _w2 = dc.spawn_worker(rts[2].clone(), slow, 1e-12);
        std::thread::sleep(Duration::from_millis(20));
        cluster.crash(HostId(2));
        let _w1 = dc.spawn_worker(rts[1].clone(), slow, 1e-12);
        let v = dc.wait_result(&rts[1]).unwrap();
        assert!((v - 8.0).abs() < 1e-6, "∫x over [0,4] = 8, got {v}");
        dc.stop_monitor(&rts[0]).unwrap();
        monitor.join().unwrap();
        cluster.shutdown();
    }
}

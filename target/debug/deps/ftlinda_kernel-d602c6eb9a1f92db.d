/root/repo/target/debug/deps/ftlinda_kernel-d602c6eb9a1f92db.d: crates/kernel/src/lib.rs crates/kernel/src/exec.rs crates/kernel/src/kernel.rs crates/kernel/src/proto.rs

/root/repo/target/debug/deps/libftlinda_kernel-d602c6eb9a1f92db.rlib: crates/kernel/src/lib.rs crates/kernel/src/exec.rs crates/kernel/src/kernel.rs crates/kernel/src/proto.rs

/root/repo/target/debug/deps/libftlinda_kernel-d602c6eb9a1f92db.rmeta: crates/kernel/src/lib.rs crates/kernel/src/exec.rs crates/kernel/src/kernel.rs crates/kernel/src/proto.rs

crates/kernel/src/lib.rs:
crates/kernel/src/exec.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/proto.rs:

/root/repo/target/debug/examples/lcc_compile-c978d8f2b80926d0.d: examples/lcc_compile.rs

/root/repo/target/debug/examples/lcc_compile-c978d8f2b80926d0: examples/lcc_compile.rs

examples/lcc_compile.rs:

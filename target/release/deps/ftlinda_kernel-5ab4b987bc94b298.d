/root/repo/target/release/deps/ftlinda_kernel-5ab4b987bc94b298.d: crates/kernel/src/lib.rs crates/kernel/src/exec.rs crates/kernel/src/kernel.rs crates/kernel/src/proto.rs

/root/repo/target/release/deps/libftlinda_kernel-5ab4b987bc94b298.rlib: crates/kernel/src/lib.rs crates/kernel/src/exec.rs crates/kernel/src/kernel.rs crates/kernel/src/proto.rs

/root/repo/target/release/deps/libftlinda_kernel-5ab4b987bc94b298.rmeta: crates/kernel/src/lib.rs crates/kernel/src/exec.rs crates/kernel/src/kernel.rs crates/kernel/src/proto.rs

crates/kernel/src/lib.rs:
crates/kernel/src/exec.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/proto.rs:

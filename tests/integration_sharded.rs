//! End-to-end tests for sharded stable tuple spaces (`shards(K)` with
//! K > 1): basic routing, cross-shard AGS atomicity, blocked-retry,
//! crash/restart convergence, digest parity with an unsharded cluster,
//! and per-signature store overrides.
//!
//! The signature shapes used here are chosen so their shard assignments
//! under K=2 are known (`[Str, Int]` → shard 0, `[Str, Str]` → shard 1
//! for the first created space); every test asserts the assignment it
//! relies on via `shard_of`, so a change to the shard map fails loudly
//! instead of silently degrading the test to a single-shard scenario.

use ftlinda::{Ags, Cluster, HostId, MatchField, Operand, StoreConfig, TsId};
use ftlinda_ags::shard_of;
use linda_tuple::{pat, tuple, Signature, TypeTag};
use std::time::Duration;

fn sig_hash(tags: &[TypeTag]) -> u64 {
    Signature::new(tags.to_vec()).stable_hash()
}

/// Shard owning `[Str, Int]` tuples of `ts` under `k` shards.
fn shard_str_int(ts: TsId, k: u32) -> u32 {
    shard_of(ts, sig_hash(&[TypeTag::Str, TypeTag::Int]), k)
}

/// Shard owning `[Str, Str]` tuples of `ts` under `k` shards.
fn shard_str_str(ts: TsId, k: u32) -> u32 {
    shard_of(ts, sig_hash(&[TypeTag::Str, TypeTag::Str]), k)
}

/// Poll until `rt` has applied enough deliveries that `ts` holds `want`
/// tuples. `out` only awaits ordering, not remote application, so
/// host-local counts lag under load.
fn wait_stable_len(rt: &ftlinda::Runtime, ts: TsId, want: usize) {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while rt.stable_len(ts) != Some(want) {
        assert!(
            std::time::Instant::now() < deadline,
            "stable_len stuck at {:?}, want {want}",
            rt.stable_len(ts)
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Plain out/in/rd traffic across both shards, from every host.
#[test]
fn sharded_cluster_serves_basic_ops() {
    let (cluster, rts) = Cluster::builder().hosts(3).shards(2).build();
    assert_eq!(cluster.shard_count(), 2);
    assert_eq!(rts[0].shard_count(), 2);
    let ts = rts[0].create_stable_ts("main").unwrap();
    assert_ne!(shard_str_int(ts, 2), shard_str_str(ts, 2));

    for i in 0..6i64 {
        rts[(i % 3) as usize].out(ts, tuple!("n", i)).unwrap();
        rts[(i % 3) as usize]
            .out(ts, tuple!("s", format!("v{i}")))
            .unwrap();
    }
    wait_stable_len(&rts[1], ts, 12);
    // Withdraw from a different host than produced; oldest-first within
    // each signature bucket.
    assert_eq!(rts[2].in_(ts, &pat!("n", ?int)).unwrap(), tuple!("n", 0));
    assert_eq!(rts[0].in_(ts, &pat!("s", ?str)).unwrap(), tuple!("s", "v0"));
    assert_eq!(rts[1].rd(ts, &pat!("n", ?int)).unwrap(), tuple!("n", 1));
    wait_stable_len(&rts[0], ts, 10);
    cluster.shutdown();
}

/// A cross-shard AGS (guard on one shard, body out on another) fires
/// atomically: bindings are right, the source tuple is withdrawn, and
/// the produced tuple is visible on every host.
#[test]
fn cross_shard_ags_moves_tuples_atomically() {
    let (cluster, rts) = Cluster::builder().hosts(3).shards(2).build();
    let ts = rts[0].create_stable_ts("main").unwrap();
    assert_ne!(shard_str_int(ts, 2), shard_str_str(ts, 2));

    rts[0].out(ts, tuple!("x", 41)).unwrap();
    let ags = Ags::builder()
        .guard_in(
            ts,
            vec![MatchField::actual("x"), MatchField::bind(TypeTag::Int)],
        )
        .out(ts, vec![Operand::cst("y"), Operand::cst("done")])
        .build()
        .unwrap();
    let out = rts[1].execute(&ags).unwrap();
    assert_eq!(out.bindings, vec![linda_tuple::Value::Int(41)]);

    assert_eq!(rts[2].rdp(ts, &pat!("x", ?int)).unwrap(), None);
    assert_eq!(
        rts[2].rd(ts, &pat!("y", ?str)).unwrap(),
        tuple!("y", "done")
    );
    // All replicas agree after the three-leg commit.
    for rt in &rts {
        assert_eq!(rt.stable_len(ts), Some(1));
    }
    cluster.shutdown();
}

/// A cross-shard AGS whose guard cannot match yet retries until another
/// host supplies the tuple — the client-side retry loop, not a parked
/// blocked-table entry, provides the blocking semantics.
#[test]
fn cross_shard_ags_blocks_until_guard_satisfiable() {
    let (cluster, rts) = Cluster::builder().hosts(2).shards(2).build();
    let ts = rts[0].create_stable_ts("main").unwrap();

    let ags = Ags::builder()
        .guard_in(
            ts,
            vec![MatchField::actual("job"), MatchField::bind(TypeTag::Int)],
        )
        .out(ts, vec![Operand::cst("log"), Operand::cst("took-job")])
        .build()
        .unwrap();
    let handle = rts[0].execute_async(&ags);
    std::thread::sleep(Duration::from_millis(40));
    assert!(!handle.is_ready(), "guard has nothing to match yet");

    rts[1].out(ts, tuple!("job", 7)).unwrap();
    let out = handle.wait().unwrap();
    assert_eq!(out.bindings, vec![linda_tuple::Value::Int(7)]);
    assert_eq!(
        rts[1].in_(ts, &pat!("log", ?str)).unwrap(),
        tuple!("log", "took-job")
    );
    cluster.shutdown();
}

/// Contending cross-shard AGSs from two hosts, racing single-shard
/// writes: every increment lands exactly once (no lost updates, no
/// duplicates) and every side effect appears exactly once.
#[test]
fn concurrent_cross_shard_updates_are_exactly_once() {
    const PER_HOST: i64 = 8;
    let (cluster, rts) = Cluster::builder().hosts(3).shards(2).build();
    let ts = rts[0].create_stable_ts("main").unwrap();
    rts[0].out(ts, tuple!("count", 0)).unwrap();

    // in("count", ?int) spans shard(Str,Int); out("tick", …) spans
    // shard(Str,Str): every increment is a cross-shard commit.
    let incr = Ags::builder()
        .guard_in(
            ts,
            vec![MatchField::actual("count"), MatchField::bind(TypeTag::Int)],
        )
        .out(ts, vec![Operand::cst("count"), Operand::formal(0).add(1)])
        .out(ts, vec![Operand::cst("tick"), Operand::cst("t")])
        .build()
        .unwrap();

    std::thread::scope(|s| {
        for rt in &rts[1..] {
            let rt = rt.clone();
            let incr = incr.clone();
            s.spawn(move || {
                for _ in 0..PER_HOST {
                    rt.execute(&incr).unwrap();
                }
            });
        }
        // Meanwhile host 0 hammers a single-shard signature.
        for i in 0..20i64 {
            rts[0].out(ts, tuple!("noise", i)).unwrap();
        }
    });

    let total = 2 * PER_HOST;
    assert_eq!(
        rts[0].rd(ts, &pat!("count", ?int)).unwrap(),
        tuple!("count", total)
    );
    for _ in 0..total {
        assert_eq!(
            rts[0].in_(ts, &pat!("tick", ?str)).unwrap(),
            tuple!("tick", "t")
        );
    }
    assert_eq!(rts[0].rdp(ts, &pat!("tick", ?str)).unwrap(), None);
    cluster.shutdown();
}

/// The same operation sequence on a K=1 and a K=4 cluster yields the
/// same canonical per-space digest — sharding changes throughput, never
/// observable state.
#[test]
fn sharded_digest_matches_unsharded() {
    let run = |shards: u32| -> (u64, u64) {
        let (cluster, rts) = Cluster::builder().hosts(2).shards(shards).build();
        let a = rts[0].create_stable_ts("a").unwrap();
        let b = rts[0].create_stable_ts("b").unwrap();
        for i in 0..5i64 {
            rts[0].out(a, tuple!("n", i)).unwrap();
            rts[0].out(a, tuple!("s", format!("v{i}"))).unwrap();
            rts[0].out(b, tuple!("m", i, i * 2)).unwrap();
        }
        rts[0].in_(a, &pat!("n", ?int)).unwrap();
        rts[0].in_(a, &pat!("s", ?str)).unwrap();
        // One cross-shard AGS in the mix (under K>1).
        let ags = Ags::builder()
            .guard_in(
                a,
                vec![MatchField::actual("n"), MatchField::bind(TypeTag::Int)],
            )
            .out(a, vec![Operand::cst("moved"), Operand::cst("yes")])
            .build()
            .unwrap();
        rts[0].execute(&ags).unwrap();
        let d = (
            rts[0].canonical_space_digest(a),
            rts[0].canonical_space_digest(b),
        );
        cluster.shutdown();
        d
    };
    assert_eq!(run(1), run(4));
}

/// Crash + restart of a host under K=2: the failure tuple is deposited
/// exactly once per space, the restarted replica catches up on every
/// shard's log independently, and full state converges.
#[test]
fn crash_restart_converges_under_sharding() {
    let (cluster, rts) = Cluster::builder().hosts(3).shards(2).build();
    let ts = rts[0].create_stable_ts("main").unwrap();
    for i in 0..4i64 {
        rts[0].out(ts, tuple!("n", i)).unwrap();
        rts[0].out(ts, tuple!("s", format!("v{i}"))).unwrap();
    }

    cluster.crash(HostId(2));
    // Exactly one failure tuple, whichever shard owns that signature.
    let f = rts[0].in_(ts, &pat!("failure", 2)).unwrap();
    assert_eq!(f, tuple!("failure", 2));
    assert_eq!(rts[1].rdp(ts, &pat!("failure", 2)).unwrap(), None);

    // Traffic on both shards while host 2 is down.
    rts[0].out(ts, tuple!("n", 100)).unwrap();
    rts[1].out(ts, tuple!("s", "late")).unwrap();

    let revived = cluster.restart(HostId(2));
    for shard in 0..rts[0].shard_count() {
        let seq = rts[0].applied_seqs()[shard];
        assert!(
            revived.wait_applied_shard(shard, seq, Duration::from_secs(5)),
            "shard {shard}: restarted host never caught up"
        );
    }
    assert_eq!(revived.snapshot(ts), rts[0].snapshot(ts));
    assert_eq!(
        revived.canonical_space_digest(ts),
        rts[0].canonical_space_digest(ts)
    );
    cluster.shutdown();
}

/// A cross-shard AGS leaves a complete transaction trace: exactly
/// `2·S+1` ordered multicasts (one XLock and one XRelease per
/// participating shard, one XExec at the home shard), each visible as
/// its own `(stage, shard)` lane entry in the assembled tree, bracketed
/// by the origin's `xbegin`/`xcommit`.
#[test]
fn cross_shard_trace_has_2s_plus_1_multicast_spans() {
    let (cluster, rts) = Cluster::builder().hosts(3).shards(2).build();
    let ts = rts[0].create_stable_ts("main").unwrap();
    let s_int = shard_str_int(ts, 2);
    let s_str = shard_str_str(ts, 2);
    assert_ne!(s_int, s_str);
    let home = s_int.min(s_str);

    rts[0].out(ts, tuple!("x", 41)).unwrap();
    let ags = Ags::builder()
        .guard_in(
            ts,
            vec![MatchField::actual("x"), MatchField::bind(TypeTag::Int)],
        )
        .out(ts, vec![Operand::cst("y"), Operand::cst("done")])
        .build()
        .unwrap();
    rts[1].execute(&ags).unwrap();

    // The origin stamped xbegin/xcommit on the transaction trace; find
    // its id from the origin's span log (fresh xid per attempt, and this
    // commit fired on the first attempt).
    let xbegin = rts[1]
        .obs()
        .spans()
        .recent()
        .into_iter()
        .rev()
        .find(|s| s.stage == "xbegin")
        .expect("origin recorded xbegin");
    let tree = cluster.trace(xbegin.trace);
    assert!(
        tree.spans.iter().any(|s| s.stage == "xcommit"),
        "origin recorded the commit"
    );
    assert_eq!(tree.shards(), vec![0, 1], "both shards participated");

    // 2·S+1 ordered multicasts: each one is a distinct (stage, shard)
    // lane entry (every replica applies it, so raw span counts are
    // hosts× that).
    let mut multicasts: Vec<(String, u32)> = Vec::new();
    for shard in tree.shards() {
        for s in tree.shard_lane(shard) {
            if matches!(s.stage.as_str(), "xlock" | "xexec" | "xrelease")
                && !multicasts.contains(&(s.stage.clone(), shard))
            {
                multicasts.push((s.stage.clone(), shard));
            }
        }
    }
    assert_eq!(multicasts.len(), 5, "2*2+1 multicasts: {multicasts:?}");

    // Per-lane ordering: lock before release on both shards; the exec
    // sits between them on the home shard only.
    for shard in [s_int, s_str] {
        let lane = tree.shard_lane(shard);
        let idx = |stage: &str| lane.iter().position(|s| s.stage == stage);
        let lock = idx("xlock").expect("xlock on every participant");
        let release = idx("xrelease").expect("xrelease on every participant");
        assert!(lock < release, "shard {shard}: lock precedes release");
        match idx("xexec") {
            Some(exec) if shard == home => assert!(lock < exec && exec < release),
            Some(_) => panic!("xexec on a non-home shard"),
            None => assert_ne!(shard, home, "home shard must carry the exec"),
        }
    }
    cluster.shutdown();
}

/// An induced body failure (a body `in` with nothing to match) rolls the
/// cross-shard commit back and increments the `body_failure` abort
/// counter on every participant host's home-shard kernel.
#[test]
fn body_failure_rollback_counts_aborts_on_every_participant() {
    let (cluster, rts) = Cluster::builder().hosts(3).shards(2).build();
    let ts = rts[0].create_stable_ts("main").unwrap();
    let home = shard_str_int(ts, 2).min(shard_str_str(ts, 2));

    rts[0].out(ts, tuple!("x", 1)).unwrap();
    // Guard matches on shard(Str,Int); the body `in` on shard(Str,Str)
    // has nothing to take → the execution fails and rolls back.
    let bad = Ags::builder()
        .guard_in(
            ts,
            vec![MatchField::actual("x"), MatchField::bind(TypeTag::Int)],
        )
        .in_(
            ts,
            vec![MatchField::actual("absent"), MatchField::actual("s")],
        )
        .build()
        .unwrap();
    assert!(rts[1].execute(&bad).is_err(), "body failure surfaces");
    // Rollback: the guard tuple is back, nothing half-committed.
    assert_eq!(rts[2].rd(ts, &pat!("x", ?int)).unwrap(), tuple!("x", 1));

    let child = format!("cause=\"body_failure\",shard=\"{home}\"");
    for rt in &rts {
        let snap = rt.metrics_snapshot();
        let aborts = snap
            .counter_family("ftlinda_xcommit_aborts_total")
            .expect("abort family on every host");
        assert!(
            aborts.get(&child).copied().unwrap_or(0) >= 1,
            "host {:?}: {aborts:?}",
            rt.host()
        );
    }
    cluster.shutdown();
}

/// `introspect_json` under K>1 nests one report per shard plus the
/// per-shard load census with the imbalance gauge in basis points.
#[test]
fn introspect_json_includes_shard_reports() {
    let (cluster, rts) = Cluster::builder().hosts(2).shards(2).build();
    let ts = rts[0].create_stable_ts("main").unwrap();
    rts[0].out(ts, tuple!("n", 1)).unwrap();
    let json = rts[0].introspect_json(4).unwrap();
    assert!(json.contains("\"shards\":2"), "json: {json}");
    assert!(json.contains("\"shard_reports\""), "json: {json}");
    assert!(json.contains("\"shard\":0") && json.contains("\"shard\":1"));
    // One tuple on one shard: the census reads fully imbalanced.
    assert!(json.contains("\"shard_census\""), "json: {json}");
    assert!(json.contains("\"imbalance_bp\":10000"), "json: {json}");
    // K=1 keeps the legacy flat shape.
    let (c1, r1) = Cluster::builder().hosts(1).shards(1).build();
    let flat = r1[0].introspect_json(4).unwrap();
    assert!(!flat.contains("shard_reports"));
    c1.shutdown();
    cluster.shutdown();
}

/// `store_config_for` scopes a tuning override to one signature: the
/// miss cache stays off for that bucket while other buckets keep the
/// default behaviour — on a sharded cluster, across different shards.
#[test]
fn store_override_scopes_to_signature_under_sharding() {
    let int_sig = Signature::new(vec![TypeTag::Str, TypeTag::Int]);
    let (cluster, rts) = Cluster::builder()
        .hosts(2)
        .shards(2)
        .store_config_for(
            &int_sig,
            StoreConfig {
                miss_cache_cap: 0,
                ..StoreConfig::default()
            },
        )
        .build();
    let ts = rts[0].create_stable_ts("main").unwrap();
    let s_int = shard_str_int(ts, 2) as usize;
    let s_str = shard_str_str(ts, 2) as usize;
    assert_ne!(s_int, s_str);

    // Repeated misses on both signatures.
    for _ in 0..3 {
        assert_eq!(rts[0].rdp(ts, &pat!("n", ?int)).unwrap(), None);
        assert_eq!(rts[0].rdp(ts, &pat!("s", ?str)).unwrap(), None);
    }
    let int_report = rts[0].introspect_shard(s_int).unwrap();
    let str_report = rts[0].introspect_shard(s_str).unwrap();
    assert_eq!(
        int_report.spaces[0].index.miss_cached, 0,
        "override disabled the miss cache for [Str,Int]"
    );
    assert!(
        str_report.spaces[0].index.miss_cached > 0,
        "default store still caches misses for [Str,Str]"
    );
    cluster.shutdown();
}

/root/repo/target/debug/deps/linda_repro-32a5a22184b54408.d: src/lib.rs

/root/repo/target/debug/deps/linda_repro-32a5a22184b54408: src/lib.rs

src/lib.rs:

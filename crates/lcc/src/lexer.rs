//! Lexer for the FT-lcc textual Linda DSL.
//!
//! The concrete syntax follows the paper's notation as closely as ASCII
//! allows: `< guard => body or guard => body >` for AGSs, `?type name`
//! for formals, `#`/`//` comments.

use std::fmt;

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind + payload.
    pub kind: TokKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Char literal.
    Char(char),
    /// `<`
    LAngle,
    /// `>`
    RAngle,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `?`
    Question,
    /// `=>`
    Arrow,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// End of input.
    Eof,
}

impl fmt::Display for TokKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokKind::Int(i) => write!(f, "integer {i}"),
            TokKind::Float(x) => write!(f, "float {x}"),
            TokKind::Str(s) => write!(f, "string {s:?}"),
            TokKind::Char(c) => write!(f, "char '{c}'"),
            TokKind::LAngle => write!(f, "`<`"),
            TokKind::RAngle => write!(f, "`>`"),
            TokKind::LParen => write!(f, "`(`"),
            TokKind::RParen => write!(f, "`)`"),
            TokKind::Comma => write!(f, "`,`"),
            TokKind::Semi => write!(f, "`;`"),
            TokKind::Question => write!(f, "`?`"),
            TokKind::Arrow => write!(f, "`=>`"),
            TokKind::Plus => write!(f, "`+`"),
            TokKind::Minus => write!(f, "`-`"),
            TokKind::Star => write!(f, "`*`"),
            TokKind::Slash => write!(f, "`/`"),
            TokKind::Percent => write!(f, "`%`"),
            TokKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A lexing error with position.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    /// Human-readable description.
    pub message: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize the whole input (appends an `Eof` token).
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! err {
        ($($arg:tt)*) => {
            return Err(LexError { message: format!($($arg)*), line, col })
        };
    }

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);
        let advance = |i: &mut usize, line: &mut u32, col: &mut u32| {
            if chars[*i] == '\n' {
                *line += 1;
                *col = 1;
            } else {
                *col += 1;
            }
            *i += 1;
        };
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                advance(&mut i, &mut line, &mut col);
            }
            '#' => {
                while i < chars.len() && chars[i] != '\n' {
                    advance(&mut i, &mut line, &mut col);
                }
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    advance(&mut i, &mut line, &mut col);
                }
            }
            '=' if chars.get(i + 1) == Some(&'>') => {
                advance(&mut i, &mut line, &mut col);
                advance(&mut i, &mut line, &mut col);
                out.push(Token {
                    kind: TokKind::Arrow,
                    line: tline,
                    col: tcol,
                });
            }
            '"' => {
                advance(&mut i, &mut line, &mut col);
                let mut s = String::new();
                loop {
                    if i >= chars.len() {
                        err!("unterminated string literal");
                    }
                    match chars[i] {
                        '"' => {
                            advance(&mut i, &mut line, &mut col);
                            break;
                        }
                        '\\' => {
                            advance(&mut i, &mut line, &mut col);
                            if i >= chars.len() {
                                err!("unterminated escape");
                            }
                            let e = chars[i];
                            s.push(match e {
                                'n' => '\n',
                                't' => '\t',
                                '\\' => '\\',
                                '"' => '"',
                                other => err!("unknown escape \\{other}"),
                            });
                            advance(&mut i, &mut line, &mut col);
                        }
                        ch => {
                            s.push(ch);
                            advance(&mut i, &mut line, &mut col);
                        }
                    }
                }
                out.push(Token {
                    kind: TokKind::Str(s),
                    line: tline,
                    col: tcol,
                });
            }
            '\'' => {
                advance(&mut i, &mut line, &mut col);
                if i >= chars.len() {
                    err!("unterminated char literal");
                }
                let ch = if chars[i] == '\\' {
                    advance(&mut i, &mut line, &mut col);
                    if i >= chars.len() {
                        err!("unterminated escape");
                    }
                    let e = chars[i];
                    match e {
                        'n' => '\n',
                        't' => '\t',
                        '\\' => '\\',
                        '\'' => '\'',
                        other => err!("unknown escape \\{other}"),
                    }
                } else {
                    chars[i]
                };
                advance(&mut i, &mut line, &mut col);
                if i >= chars.len() || chars[i] != '\'' {
                    err!("unterminated char literal");
                }
                advance(&mut i, &mut line, &mut col);
                out.push(Token {
                    kind: TokKind::Char(ch),
                    line: tline,
                    col: tcol,
                });
            }
            '0'..='9' => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    advance(&mut i, &mut line, &mut col);
                }
                let mut is_float = false;
                if i < chars.len()
                    && chars[i] == '.'
                    && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                {
                    is_float = true;
                    advance(&mut i, &mut line, &mut col);
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        advance(&mut i, &mut line, &mut col);
                    }
                }
                if i < chars.len() && (chars[i] == 'e' || chars[i] == 'E') {
                    is_float = true;
                    advance(&mut i, &mut line, &mut col);
                    if i < chars.len() && (chars[i] == '+' || chars[i] == '-') {
                        advance(&mut i, &mut line, &mut col);
                    }
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        advance(&mut i, &mut line, &mut col);
                    }
                }
                let text: String = chars[start..i].iter().collect();
                let kind = if is_float {
                    TokKind::Float(text.parse().map_err(|_| LexError {
                        message: format!("bad float literal {text}"),
                        line: tline,
                        col: tcol,
                    })?)
                } else {
                    TokKind::Int(text.parse().map_err(|_| LexError {
                        message: format!("integer literal {text} out of range"),
                        line: tline,
                        col: tcol,
                    })?)
                };
                out.push(Token {
                    kind,
                    line: tline,
                    col: tcol,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    advance(&mut i, &mut line, &mut col);
                }
                let text: String = chars[start..i].iter().collect();
                out.push(Token {
                    kind: TokKind::Ident(text),
                    line: tline,
                    col: tcol,
                });
            }
            _ => {
                let kind = match c {
                    '<' => TokKind::LAngle,
                    '>' => TokKind::RAngle,
                    '(' => TokKind::LParen,
                    ')' => TokKind::RParen,
                    ',' => TokKind::Comma,
                    ';' => TokKind::Semi,
                    '?' => TokKind::Question,
                    '+' => TokKind::Plus,
                    '-' => TokKind::Minus,
                    '*' => TokKind::Star,
                    '/' => TokKind::Slash,
                    '%' => TokKind::Percent,
                    other => err!("unexpected character `{other}`"),
                };
                advance(&mut i, &mut line, &mut col);
                out.push(Token {
                    kind,
                    line: tline,
                    col: tcol,
                });
            }
        }
    }
    out.push(Token {
        kind: TokKind::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn punctuation_and_arrow() {
        assert_eq!(
            kinds("< => > ( ) , ; ? + - * / %"),
            vec![
                TokKind::LAngle,
                TokKind::Arrow,
                TokKind::RAngle,
                TokKind::LParen,
                TokKind::RParen,
                TokKind::Comma,
                TokKind::Semi,
                TokKind::Question,
                TokKind::Plus,
                TokKind::Minus,
                TokKind::Star,
                TokKind::Slash,
                TokKind::Percent,
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn literals() {
        assert_eq!(
            kinds("42 2.5 1e3 \"hi\\n\" 'x' '\\n'"),
            vec![
                TokKind::Int(42),
                TokKind::Float(2.5),
                TokKind::Float(1000.0),
                TokKind::Str("hi\n".into()),
                TokKind::Char('x'),
                TokKind::Char('\n'),
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn identifiers_and_comments() {
        assert_eq!(
            kinds("in out # comment\nrd // another\n_x9"),
            vec![
                TokKind::Ident("in".into()),
                TokKind::Ident("out".into()),
                TokKind::Ident("rd".into()),
                TokKind::Ident("_x9".into()),
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn positions_tracked() {
        let toks = lex("ab\n  cd").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn negative_numbers_are_minus_then_int() {
        assert_eq!(
            kinds("-3"),
            vec![TokKind::Minus, TokKind::Int(3), TokKind::Eof]
        );
    }

    #[test]
    fn errors() {
        assert!(lex("\"unterminated").is_err());
        assert!(lex("'a").is_err());
        assert!(lex("@").is_err());
        assert!(lex("99999999999999999999").is_err());
    }
}

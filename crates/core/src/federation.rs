//! Transport-agnostic observability federation.
//!
//! PRs 3/5/8 built cross-replica trace assembly and the merged
//! `/metrics/cluster` page against one assumption: every member's
//! registry is reachable through a shared in-process runtime map. A TCP
//! cluster breaks that — each process holds exactly one member — so the
//! merge logic lives here, written against [`MemberSource`] instead of
//! the map: a member is either *local* (same address space, read its
//! logs directly) or *remote* (another OS process, scrape its HTTP
//! exporter's leaf endpoints). Sim clusters federate over all-local
//! sources and behave exactly as before; TCP clusters mix one local
//! source with N−1 remote ones and get the same merged artifacts.
//!
//! The remote protocol is deliberately dumb: two GET endpoints serving
//! the text wire formats from `linda-obs` —
//!
//! - `/spans/<id>` → [`linda_obs::spans_wire`] (local spans of one
//!   trace plus the span ring's eviction horizon), and
//! - `/metrics/snapshot` → [`linda_obs::RegistrySnapshot::to_wire`]
//!   (the full snapshot with merge modes and histogram layouts intact).
//!
//! Both are *leaves*: they never fan out themselves, so the fan-out
//! endpoints (`/cluster/trace/<id>`, `/metrics/cluster`) can call them
//! on every peer without recursion. An unreachable live member is never
//! papered over: traces list it in
//! [`linda_obs::TraceTree::truncated_hosts`], and the merged metrics
//! page reports it in `ftlinda_federation_unreachable`.

use crate::runtime::Runtime;
use crate::server::http_get;
use consul_sim::HostId;
use std::collections::HashSet;
use std::net::SocketAddr;
use std::time::Duration;

/// Per-peer budget for one federation fetch. Short: a scrape of an N
/// member cluster does N−1 of these sequentially off one exporter
/// thread, and a dead member costs the full timeout.
pub const FEDERATION_TIMEOUT: Duration = Duration::from_millis(1500);

/// One member's observability state, reachable either directly (same
/// process) or over its HTTP exporter (another process).
#[derive(Clone)]
pub enum MemberSource {
    /// A member whose runtime lives in this address space.
    Local(Runtime),
    /// A member in another OS process, scraped at its exporter address.
    Remote {
        /// The member's id.
        host: HostId,
        /// Its HTTP exporter address.
        http: SocketAddr,
    },
}

impl MemberSource {
    /// The member's id.
    pub fn host(&self) -> HostId {
        match self {
            MemberSource::Local(rt) => rt.host(),
            MemberSource::Remote { host, .. } => *host,
        }
    }

    /// This member's spans of trace `id`, plus one eviction horizon per
    /// span ring consulted ([`linda_obs::SpanLog::evicted_newest_micros`]).
    /// `Err` means the member could not be reached or spoke garbage.
    fn spans_of(
        &self,
        id: linda_obs::TraceId,
    ) -> Result<(Vec<linda_obs::SpanRecord>, Vec<Option<u64>>), String> {
        match self {
            MemberSource::Local(rt) => {
                let mut spans = Vec::new();
                let mut horizons = Vec::new();
                // One span log per shard registry; per-shard local-id
                // bases keep trace ids disjoint, so collecting from all
                // lanes is safe.
                for obs in rt.obs_all() {
                    let log = obs.spans();
                    spans.extend(log.spans_of(id));
                    horizons.push(log.evicted_newest_micros());
                }
                Ok((spans, horizons))
            }
            MemberSource::Remote { http, .. } => {
                let (status, body) = http_get(*http, &format!("/spans/{id}"), FEDERATION_TIMEOUT)
                    .map_err(|e| e.to_string())?;
                if status != 200 {
                    return Err(format!("/spans/{id} answered {status}"));
                }
                let (spans, horizon) = linda_obs::parse_spans_wire(&body)?;
                Ok((spans, vec![horizon]))
            }
        }
    }

    /// This member's full registry snapshot. `Err` means unreachable or
    /// malformed.
    fn snapshot(&self) -> Result<linda_obs::RegistrySnapshot, String> {
        match self {
            MemberSource::Local(rt) => Ok(rt.metrics_snapshot()),
            MemberSource::Remote { http, .. } => {
                let (status, body) = http_get(*http, "/metrics/snapshot", FEDERATION_TIMEOUT)
                    .map_err(|e| e.to_string())?;
                if status != 200 {
                    return Err(format!("/metrics/snapshot answered {status}"));
                }
                linda_obs::RegistrySnapshot::from_wire(&body)
            }
        }
    }
}

/// Assemble the cluster-wide span tree of `id` from every live member.
///
/// Spans from all reachable sources merge into one tree (span `host`
/// fields keep per-host attribution; kernel spans' `shard` fields keep
/// the per-shard lanes). A live member that cannot be reached — or whose
/// reply does not parse — is recorded in
/// [`linda_obs::TraceTree::truncated_hosts`] rather than silently
/// producing a smaller tree; members the failure detector already
/// declared dead are skipped without marking (their spans are gone with
/// the process, which the ordered Fail record documents elsewhere).
pub fn federate_trace(
    sources: &[MemberSource],
    live: &HashSet<HostId>,
    id: linda_obs::TraceId,
) -> linda_obs::TraceTree {
    let mut spans: Vec<linda_obs::SpanRecord> = Vec::new();
    let mut horizons: Vec<Option<u64>> = Vec::new();
    let mut unreachable: Vec<HostId> = Vec::new();
    for src in sources {
        // A local runtime is always readable — even a crashed Sim host's
        // span log survives in-process, and skipping it would shrink
        // traces the pre-federation assembler used to serve whole.
        if matches!(src, MemberSource::Remote { .. }) && !live.contains(&src.host()) {
            continue;
        }
        match src.spans_of(id) {
            Ok((s, h)) => {
                spans.extend(s);
                horizons.extend(h);
            }
            Err(_) => unreachable.push(src.host()),
        }
    }
    let mut tree = linda_obs::TraceTree::assemble(id, spans);
    tree.mark_truncation(horizons);
    for h in unreachable {
        tree.mark_host_truncated(h.0);
    }
    tree
}

/// Merge `extra` (this process's cluster-level registry) with every live
/// member's snapshot into one [`linda_obs::RegistrySnapshot`] —
/// counters/gauge-children sum (or max, per merge mode), histograms
/// merge bucket-wise. Live members that cannot be reached are counted in
/// the returned snapshot's `ftlinda_federation_unreachable` gauge so a
/// partial page is visibly partial.
pub fn federate_metrics(
    sources: &[MemberSource],
    live: &HashSet<HostId>,
    extra: &linda_obs::Registry,
) -> linda_obs::RegistrySnapshot {
    let mut ordered: Vec<&MemberSource> = sources.iter().collect();
    ordered.sort_by_key(|s| s.host().0);
    // Fetch every member first: the unreachable count must land in the
    // base snapshot taken below, so the page that observed the misses is
    // the page that reports them.
    let mut fetched: Vec<linda_obs::RegistrySnapshot> = Vec::new();
    let mut missed = 0;
    for src in ordered {
        if !live.contains(&src.host()) {
            continue;
        }
        match src.snapshot() {
            Ok(s) => fetched.push(s),
            Err(_) => missed += 1,
        }
    }
    extra
        .gauge(
            "ftlinda_federation_unreachable",
            "Live members whose snapshot could not be fetched during the last federated scrape",
        )
        .set(missed);
    let mut snap = extra.snapshot();
    for s in &fetched {
        snap.merge(s);
    }
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_source_failure_marks_truncated_host() {
        // An address nothing listens on: connection refused, fast.
        let dead = MemberSource::Remote {
            host: HostId(7),
            http: "127.0.0.1:1".parse().unwrap(),
        };
        let live: HashSet<HostId> = [HostId(7)].into_iter().collect();
        let id = linda_obs::TraceId::new(0, 1);
        let tree = federate_trace(std::slice::from_ref(&dead), &live, id);
        assert!(tree.truncated);
        assert_eq!(tree.truncated_hosts, vec![7]);

        // The same member, declared dead: skipped without marking.
        let tree = federate_trace(&[dead], &HashSet::new(), id);
        assert!(!tree.truncated);
        assert!(tree.truncated_hosts.is_empty());
    }

    #[test]
    fn unreachable_members_are_counted_on_the_merged_page() {
        let reg = linda_obs::Registry::new();
        let dead = MemberSource::Remote {
            host: HostId(3),
            http: "127.0.0.1:1".parse().unwrap(),
        };
        let live: HashSet<HostId> = [HostId(3)].into_iter().collect();
        let snap = federate_metrics(&[dead], &live, &reg);
        assert_eq!(snap.gauge("ftlinda_federation_unreachable"), Some(1));
    }
}

//! End-to-end tests of the per-member HTTP observability surface and the
//! flight recorder: scrape `/metrics`, `/healthz`, `/events` and
//! `/trace/<id>` over real TCP, and check that injected divergence
//! produces an on-disk flight dump.

use ftlinda::{Ags, Cluster, HostId, Operand};
use linda_tuple::tuple;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Minimal HTTP/1.1 GET over std TCP; returns `(status, body)`.
fn http_get(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect exporter");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .expect("status line")
        .parse()
        .expect("numeric status");
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn metrics_healthz_events_endpoints_serve_on_every_member() {
    let (cluster, rts) = Cluster::new(3);
    let ts = rts[0].create_stable_ts("main").unwrap();
    for i in 0..10i64 {
        rts[(i % 3) as usize].out(ts, tuple!("n", i)).unwrap();
    }
    for rt in &rts {
        let addr = cluster.http_addr(rt.host()).expect("exporter running");

        let (code, metrics) = http_get(addr, "/metrics");
        assert_eq!(code, 200);
        // Per-stage pipeline histograms and the batching knob gauge are
        // all present in the exposition.
        for name in [
            "ftlinda_ags_submit_seconds",
            "ftlinda_ags_execute_seconds",
            "ftlinda_ags_total_seconds",
            "ftlinda_batch_size",
            "ftlinda_batch_max_bytes",
            "ftlinda_events_dropped_total",
        ] {
            assert!(metrics.contains(name), "missing {name} in:\n{metrics}");
        }

        let (code, health) = http_get(addr, "/healthz");
        assert_eq!(code, 200);
        assert!(health.contains(&format!("\"host\":{}", rt.host().0)));
        assert!(health.contains("\"live\":true"), "healthy member: {health}");
        assert!(health.contains("\"applied_seq\":"), "bad health: {health}");
        assert!(health.contains("\"rejoin_error\":null"));

        let (code, _events) = http_get(addr, "/events");
        assert_eq!(code, 200);

        // Unknown path and malformed trace ids are rejected, not 500s.
        let (code, _) = http_get(addr, "/nope");
        assert_eq!(code, 404);
        let (code, _) = http_get(addr, "/trace/garbage");
        assert_eq!(code, 400);
    }
    cluster.shutdown();
}

#[test]
fn trace_endpoint_returns_cross_replica_span_tree() {
    // Default build = batching enabled (100µs window), so concurrent
    // submits exercise the queued/coalesced flush path.
    let (cluster, rts) = Cluster::new(3);
    let ts = rts[0].create_stable_ts("main").unwrap();
    let handles: Vec<_> = (0..8i64)
        .map(|i| rts[1].execute_async(&Ags::out_one(ts, vec![Operand::cst("t"), Operand::cst(i)])))
        .collect();
    let traces: Vec<_> = handles.iter().map(|h| h.trace_id()).collect();
    for h in handles {
        h.wait().unwrap();
    }
    // Wait until every replica has applied everything the origin has.
    for rt in &rts {
        assert!(rt.wait_applied(rts[1].applied_seq(), Duration::from_secs(5)));
    }

    let all_hosts: Vec<u32> = rts.iter().map(|rt| rt.host().0).collect();
    for id in &traces {
        // The in-process view is complete: submit at the origin, one
        // flush at the coordinator, deliver+apply everywhere.
        let tree = cluster.trace(*id);
        assert!(
            tree.is_complete(&all_hosts),
            "incomplete span chain for {id}: {}",
            tree.to_json()
        );
        assert!(tree.has("submit", 1));
        for h in &all_hosts {
            assert!(tree.has("deliver", *h), "no deliver span on host {h}");
            assert!(tree.has("apply", *h), "no apply span on host {h}");
        }

        // And every member serves the same assembled tree over HTTP.
        for rt in &rts {
            let addr = cluster.http_addr(rt.host()).unwrap();
            let (code, body) = http_get(addr, &format!("/trace/{id}"));
            assert_eq!(code, 200);
            for stage in ["\"submit\"", "\"flush\"", "\"deliver\"", "\"apply\""] {
                assert!(body.contains(stage), "missing {stage} in {body}");
            }
            assert!(body.contains(&format!("\"trace\":\"{id}\"")));
        }
    }
    cluster.shutdown();
}

#[test]
fn divergence_triggers_flight_recorder_dump() {
    let dir = std::env::temp_dir().join(format!(
        "ftlinda-flight-{}-{}",
        std::process::id(),
        ftlinda::obs::now_micros()
    ));
    let (cluster, rts) = Cluster::builder()
        .hosts(3)
        .divergence_period(Duration::from_millis(5))
        .flight_dir(&dir)
        .build();
    let ts = rts[0].create_stable_ts("main").unwrap();
    rts[0].out(ts, tuple!("base", 1)).unwrap();
    for rt in &rts[1..] {
        assert!(rt.wait_applied(rts[0].applied_seq(), Duration::from_secs(5)));
    }

    // Corrupt one replica behind the total order's back.
    assert!(rts[2].fault_inject_local(ts, tuple!("phantom", 666)));

    // The monitor notices the divergence event and dumps within a few
    // detector periods.
    let deadline = Instant::now() + Duration::from_secs(10);
    let dump = loop {
        let found = std::fs::read_dir(&dir)
            .ok()
            .into_iter()
            .flatten()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| {
                p.file_name()
                    .map(|n| {
                        let n = n.to_string_lossy();
                        n.starts_with("flight-") && n.contains("digest_divergence")
                    })
                    .unwrap_or(false)
            });
        if let Some(p) = found {
            break p;
        }
        assert!(
            Instant::now() < deadline,
            "no flight dump appeared in {dir:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    };

    let text = std::fs::read_to_string(&dump).unwrap();
    assert!(text.contains("# reason: digest_divergence"));
    // Per-member digests, event rings and span logs are all present.
    for h in 0..3 {
        assert!(text.contains(&format!("== state host={h} ==")), "{text}");
        assert!(text.contains(&format!("== events host={h} ==")));
        assert!(text.contains(&format!("== spans host={h} ==")));
    }
    assert!(text.contains("\"digest\":\"0x"));
    assert!(text.contains("== cluster events =="));
    assert!(
        text.contains("digest_divergence"),
        "divergence event in ring"
    );
    assert!(text.contains("== order stats =="));

    cluster.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exporter_keeps_serving_across_crash_and_restart() {
    let (cluster, rts) = Cluster::new(3);
    let ts = rts[0].create_stable_ts("main").unwrap();
    rts[0].out(ts, tuple!("pre", 1)).unwrap();
    let addr2 = cluster.http_addr(HostId(2)).unwrap();

    cluster.crash(HostId(2));
    // The scrape sidecar outlives the simulated process: /healthz now
    // reports the member dead.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (code, health) = http_get(addr2, "/healthz");
        assert_eq!(code, 200);
        if health.contains("\"live\":false") {
            break;
        }
        assert!(Instant::now() < deadline, "crash never visible: {health}");
        std::thread::sleep(Duration::from_millis(10));
    }

    let _rt2 = cluster.restart(HostId(2));
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let (code, health) = http_get(addr2, "/healthz");
        assert_eq!(code, 200);
        if health.contains("\"live\":true") {
            break;
        }
        assert!(Instant::now() < deadline, "restart never visible: {health}");
        std::thread::sleep(Duration::from_millis(10));
    }
    // Metrics for the fresh incarnation are served from the same port.
    let (code, metrics) = http_get(addr2, "/metrics");
    assert_eq!(code, 200);
    assert!(metrics.contains("ftlinda_applied_seq"));
    cluster.shutdown();
}

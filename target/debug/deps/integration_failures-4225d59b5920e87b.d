/root/repo/target/debug/deps/integration_failures-4225d59b5920e87b.d: tests/integration_failures.rs Cargo.toml

/root/repo/target/debug/deps/libintegration_failures-4225d59b5920e87b.rmeta: tests/integration_failures.rs Cargo.toml

tests/integration_failures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/integration_failures-49b83b0c1d95c49a.d: tests/integration_failures.rs

/root/repo/target/debug/deps/integration_failures-49b83b0c1d95c49a: tests/integration_failures.rs

tests/integration_failures.rs:

//! Offline shim for the `criterion` crate.
//!
//! A minimal wall-clock benchmark harness exposing the criterion API this
//! workspace's benches use (`benchmark_group`, `bench_function`,
//! `iter`/`iter_custom`, `sample_size`, `measurement_time`, and the
//! `criterion_group!`/`criterion_main!` macros). It runs each benchmark for
//! the configured measurement time and prints mean/median per-iteration
//! times — no statistical analysis, plots, or HTML reports.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion's optimization barrier.
pub use std::hint::black_box;

/// Top-level harness handle; one per bench binary.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Accepts CLI configuration in real criterion; a no-op here.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), 10, Duration::from_secs(2), f);
        self
    }
}

/// A named group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Declares throughput for reporting; a no-op here.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&id, self.sample_size, self.measurement_time, f);
        self
    }

    /// Ends the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

/// Throughput annotation accepted for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Benchmark body driver passed to `bench_function` closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    deadline: Instant,
}

impl Bencher {
    /// Times `routine`, repeatedly, until the sample budget is used.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        loop {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples
                .push(elapsed / self.iters_per_sample.max(1) as u32);
            if Instant::now() >= self.deadline {
                break;
            }
        }
    }

    /// Like [`Bencher::iter`] but the routine does its own timing: it
    /// receives an iteration count and returns the elapsed time.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        loop {
            let elapsed = routine(self.iters_per_sample);
            self.samples
                .push(elapsed / self.iters_per_sample.max(1) as u32);
            if Instant::now() >= self.deadline {
                break;
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) {
    // One warm-up call with a tiny budget so jits/caches settle.
    let mut warmup = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        deadline: Instant::now(),
    };
    f(&mut warmup);

    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        iters_per_sample: 1,
        deadline: Instant::now() + measurement_time,
    };
    f(&mut b);
    let mut samples = b.samples;
    if samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{id:<48} mean {mean:>12?}  median {median:>12?}  ({n} samples)",
        n = samples.len()
    );
}

/// Declares a group of benchmark functions as a single runner fn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($target(&mut c);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_smoke");
        g.sample_size(3).measurement_time(Duration::from_millis(20));
        let mut ran = 0u64;
        g.bench_function("count", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn iter_custom_collects_samples() {
        let mut c = Criterion::default();
        c.bench_function("custom", |b| {
            b.iter_custom(|iters| Duration::from_nanos(iters * 10))
        });
    }
}

//! The per-host FT-Linda runtime: the library a process links against.
//!
//! Each host runs one [`Runtime`]. It owns the host's replica [`Kernel`],
//! an apply thread that feeds the kernel the totally-ordered delivery
//! stream, and the completion plumbing that resolves a client's blocking
//! call when *this* host's kernel reports the client's AGS as executed.
//!
//! The paper's Figure 15 architecture maps as: FT-Linda library =
//! [`Runtime`] methods; Consul = `consul_sim::SeqMember`; TS state
//! machine = `ftlinda_kernel::Kernel`.

use crate::error::FtError;
use consul_sim::{HostId, LocalId, SeqMember};
use crossbeam::channel::{Receiver, Sender};
use ftlinda_ags::{Ags, AgsOutcome, MatchField, Operand, ScratchId, TsId};
use ftlinda_kernel::{encode_request, IntrospectReport, Kernel, KernelNote, Request, StoreConfig};
use linda_space::LocalSpace;
use linda_tuple::{PatField, Pattern, Tuple, Value};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Failure/recovery events observable by application code (in addition to
/// the failure *tuples* deposited in every stable TS).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FtEvent {
    /// A host was detected as failed (ordered with the command stream).
    HostFailed(HostId),
    /// A host rejoined.
    HostJoined(HostId),
}

type CompletionTx = Sender<Result<CompletionOk, FtError>>;

/// Observability configuration for one [`Runtime`] (set through
/// [`crate::ClusterBuilder`]; [`Runtime::new`] uses the defaults).
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Emit an `ags_starving` event each time a blocked AGS's age crosses
    /// a further multiple of this threshold. `None` disables the
    /// watchdog thread.
    pub starvation_after: Option<Duration>,
    /// Deep introspection: per-signature occupancy/match-cost metric
    /// families and the `/introspect` endpoint. When `false` the kernel
    /// keeps only its scalar gauges and [`Runtime::introspect`] returns
    /// `None`.
    pub introspection: bool,
    /// Matching-engine tuning for the kernel's stable stores: value-index
    /// promotion thresholds and the miss-cache capacity. Derived state
    /// only — never affects match results or the replicated digest.
    pub store: StoreConfig,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            starvation_after: Some(Duration::from_secs(5)),
            introspection: true,
            store: StoreConfig::default(),
        }
    }
}

/// Successful completion payload routed back to a waiting client.
#[derive(Debug, Clone, PartialEq)]
pub enum CompletionOk {
    /// An AGS fired.
    Ags(AgsOutcome),
    /// A `CreateTs` resolved.
    Ts(TsId),
}

struct Shared {
    /// Per-call completion channel and submit instant, keyed by the
    /// origin-local broadcast id.
    waiting: Mutex<HashMap<LocalId, (CompletionTx, Instant)>>,
    events: Mutex<Vec<Sender<FtEvent>>>,
    kernel: Mutex<Kernel>,
    alive: AtomicBool,
    config: RuntimeConfig,
    next_scratch: AtomicU32,
    obs: Arc<linda_obs::Registry>,
    spans: Arc<linda_obs::SpanLog>,
    hist_submit: Arc<linda_obs::Histogram>,
    hist_notify: Arc<linda_obs::Histogram>,
    hist_total: Arc<linda_obs::Histogram>,
    completions: Arc<linda_obs::Counter>,
}

/// Handle to the FT-Linda runtime on one host. Cloneable; clones share
/// the host's kernel and connection.
#[derive(Clone)]
pub struct Runtime {
    host: HostId,
    member: Arc<SeqMember>,
    shared: Arc<Shared>,
}

impl Runtime {
    /// Wire a runtime on top of an ordered-multicast member. Spawns the
    /// apply thread. (Use [`crate::Cluster`] rather than calling this
    /// directly.)
    pub fn new(member: SeqMember) -> Runtime {
        Runtime::with_config(member, RuntimeConfig::default())
    }

    /// [`Runtime::new`] with explicit observability configuration —
    /// starvation-watchdog threshold and deep-introspection switch.
    pub fn with_config(member: SeqMember, config: RuntimeConfig) -> Runtime {
        let host = member.host();
        let (note_tx, note_rx) = crossbeam::channel::unbounded::<KernelNote>();
        let obs = member.obs();
        let mut kernel = Kernel::new(host, note_tx);
        kernel.set_store_config(config.store);
        kernel.attach_obs_with(&obs, config.introspection);
        let hist_submit = obs.histogram(
            "ftlinda_ags_submit_seconds",
            "Client encode + broadcast handoff latency",
        );
        let hist_notify = obs.histogram(
            "ftlinda_ags_notify_seconds",
            "Kernel completion to client notify latency",
        );
        let hist_total = obs.histogram(
            "ftlinda_ags_total_seconds",
            "End-to-end AGS latency: submit to completion routed",
        );
        let completions = obs.counter(
            "ftlinda_ags_completions_total",
            "AGS/CreateTs completions routed to local clients",
        );
        let spans = obs.spans_handle();
        let shared = Arc::new(Shared {
            waiting: Mutex::new(HashMap::new()),
            events: Mutex::new(Vec::new()),
            kernel: Mutex::new(kernel),
            alive: AtomicBool::new(true),
            config,
            next_scratch: AtomicU32::new(0),
            obs,
            spans,
            hist_submit,
            hist_notify,
            hist_total,
            completions,
        });
        let member = Arc::new(member);
        let rt = Runtime {
            host,
            member: member.clone(),
            shared: shared.clone(),
        };
        std::thread::Builder::new()
            .name(format!("ftlinda-apply-{host}"))
            .spawn(move || loop {
                let d = match member.deliveries().recv_timeout(Duration::from_millis(100)) {
                    Ok(d) => d,
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                        if !shared.alive.load(AtomicOrdering::Relaxed) {
                            return;
                        }
                        continue;
                    }
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                        shared.alive.store(false, AtomicOrdering::Relaxed);
                        // Wake all waiters with Shutdown.
                        let mut w = shared.waiting.lock();
                        for (_, (tx, _)) in w.drain() {
                            let _ = tx.send(Err(FtError::Shutdown));
                        }
                        return;
                    }
                };
                // Pipelining: a batched multicast (or a replayed
                // snapshot) lands many deliveries at once; drain them
                // and apply the whole run under one kernel lock instead
                // of re-acquiring per record.
                let mut run = vec![d];
                run.extend(member.deliveries().try_iter().take(255));
                let pending = {
                    let mut k = shared.kernel.lock();
                    k.apply_all(&run);
                    k.take_pending_checkpoint()
                };
                // An ordered checkpoint boundary was in the run: the
                // kernel snapshotted itself there; hand the image back to
                // the ordering layer so it can truncate its log and serve
                // joiners in O(state).
                if let Some(image) = pending {
                    shared.obs.events_handle().emit(linda_obs::Event::new(
                        "checkpoint_taken",
                        vec![
                            ("host".into(), host.to_string()),
                            ("seq".into(), image.seq.to_string()),
                            ("bytes".into(), image.bytes.len().to_string()),
                        ],
                    ));
                    member.install_checkpoint(image);
                }
                // Route kernel notes produced by this apply.
                for note in note_rx.try_iter() {
                    let routed_at = Instant::now();
                    match note {
                        KernelNote::Completed { local, result, .. } => {
                            if let Some((tx, t0)) = shared.waiting.lock().remove(&local) {
                                shared.hist_total.observe(t0.elapsed());
                                shared.completions.inc();
                                shared.spans.record(
                                    linda_obs::TraceId::new(host.0, local),
                                    "complete",
                                    host.0,
                                    vec![(
                                        "outcome".into(),
                                        if result.is_ok() { "ok" } else { "err" }.into(),
                                    )],
                                );
                                let _ =
                                    tx.send(result.map(CompletionOk::Ags).map_err(FtError::Exec));
                                shared.hist_notify.observe(routed_at.elapsed());
                            }
                        }
                        KernelNote::TsCreated { local, id, .. } => {
                            if let Some((tx, t0)) = shared.waiting.lock().remove(&local) {
                                shared.hist_total.observe(t0.elapsed());
                                shared.completions.inc();
                                shared.spans.record(
                                    linda_obs::TraceId::new(host.0, local),
                                    "complete",
                                    host.0,
                                    vec![("outcome".into(), "ts_created".into())],
                                );
                                let _ = tx.send(Ok(CompletionOk::Ts(id)));
                                shared.hist_notify.observe(routed_at.elapsed());
                            }
                        }
                        KernelNote::HostFailed { host, .. } => {
                            Self::publish(&shared, FtEvent::HostFailed(host));
                        }
                        KernelNote::HostJoined { host, .. } => {
                            Self::publish(&shared, FtEvent::HostJoined(host));
                        }
                        KernelNote::Restored { seq } => {
                            shared.obs.events_handle().emit(linda_obs::Event::new(
                                "state_restored",
                                vec![
                                    ("host".into(), host.to_string()),
                                    ("seq".into(), seq.to_string()),
                                ],
                            ));
                            // The replica jumped to a checkpoint image:
                            // calls in flight across the jump are
                            // indeterminate (their records may lie inside
                            // the compacted history). Fail their waiters
                            // explicitly rather than leaving them hung.
                            let mut w = shared.waiting.lock();
                            for (_, (tx, _)) in w.drain() {
                                let _ = tx.send(Err(FtError::StateTransfer));
                            }
                        }
                        KernelNote::RestoreFailed { seq, ref error } => {
                            shared.obs.events_handle().emit(linda_obs::Event::new(
                                "restore_failed",
                                vec![
                                    ("host".into(), host.to_string()),
                                    ("seq".into(), seq.to_string()),
                                    ("error".into(), error.to_string()),
                                ],
                            ));
                        }
                        KernelNote::Malformed { .. } => {}
                    }
                }
            })
            .expect("spawn apply thread");
        if let Some(threshold) = rt.shared.config.starvation_after.filter(|t| !t.is_zero()) {
            rt.spawn_watchdog(threshold);
        }
        rt
    }

    /// Background starvation watchdog: periodically runs the kernel's
    /// sweep so blocked AGSs whose age crosses the threshold surface as
    /// `ags_starving` events without anyone polling `/introspect`.
    fn spawn_watchdog(&self, threshold: Duration) {
        let shared = self.shared.clone();
        let host = self.host;
        // Sweep a few times per threshold so a crossing is reported
        // promptly, but never spin faster than 10ms.
        let period = (threshold / 4).clamp(Duration::from_millis(10), Duration::from_secs(1));
        std::thread::Builder::new()
            .name(format!("ftlinda-watchdog-{host}"))
            .spawn(move || {
                while shared.alive.load(AtomicOrdering::Relaxed) {
                    std::thread::sleep(period);
                    shared.kernel.lock().starvation_sweep(threshold);
                }
            })
            .expect("spawn starvation watchdog");
    }

    fn publish(shared: &Shared, ev: FtEvent) {
        let mut subs = shared.events.lock();
        subs.retain(|tx| tx.send(ev.clone()).is_ok());
    }

    /// This runtime's host id.
    pub fn host(&self) -> HostId {
        self.host
    }

    /// Subscribe to failure/recovery events.
    pub fn events(&self) -> Receiver<FtEvent> {
        let (tx, rx) = crossbeam::channel::unbounded();
        self.shared.events.lock().push(tx);
        rx
    }

    fn submit(&self, req: &Request) -> (Receiver<Result<CompletionOk, FtError>>, LocalId) {
        let (tx, rx) = crossbeam::channel::bounded(1);
        let t0 = Instant::now();
        let kind = match req {
            Request::CreateTs { .. } => "create",
            Request::Ags(_) => "ags",
        };
        let payload = bytes::Bytes::from(encode_request(req));
        // Stamp the submit span *before* the broadcast: the local id is
        // only known afterwards, but with a fast network downstream
        // stages can record their spans before this thread resumes, and
        // the submit must still sort first in the assembled tree.
        let at0 = linda_obs::now_micros();
        // Hold the waiting lock across broadcast + insert so the apply
        // thread cannot route the completion before the waiter exists.
        let mut w = self.shared.waiting.lock();
        let local = self.member.broadcast(payload);
        w.insert(local, (tx, t0));
        drop(w);
        self.shared.spans.push(linda_obs::SpanRecord {
            trace: linda_obs::TraceId::new(self.host.0, local),
            stage: "submit".into(),
            host: self.host.0,
            at_micros: at0,
            fields: vec![("kind".into(), kind.into())],
        });
        self.shared.hist_submit.observe(t0.elapsed());
        (rx, local)
    }

    fn await_ok(
        &self,
        rx: Receiver<Result<CompletionOk, FtError>>,
        timeout: Option<Duration>,
    ) -> Result<CompletionOk, FtError> {
        match timeout {
            None => rx.recv().map_err(|_| FtError::Shutdown)?,
            Some(t) => match rx.recv_timeout(t) {
                Ok(r) => r,
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => Err(FtError::Timeout),
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => Err(FtError::Shutdown),
            },
        }
    }

    // ----- stable tuple spaces -------------------------------------------

    /// Create (or look up) a stable tuple space by name. Stable spaces are
    /// replicated on every host; their contents survive any minority of
    /// crashes and are updated with one multicast per AGS.
    pub fn create_stable_ts(&self, name: &str) -> Result<TsId, FtError> {
        let (rx, _) = self.submit(&Request::CreateTs { name: name.into() });
        match self.await_ok(rx, None)? {
            CompletionOk::Ts(id) => Ok(id),
            CompletionOk::Ags(_) => unreachable!("create resolved as AGS"),
        }
    }

    /// Execute an AGS, blocking until it fires (or fails).
    pub fn execute(&self, ags: &Ags) -> Result<AgsOutcome, FtError> {
        let (rx, _) = self.submit(&Request::Ags(ags.clone()));
        match self.await_ok(rx, None)? {
            CompletionOk::Ags(o) => Ok(o),
            CompletionOk::Ts(_) => unreachable!("AGS resolved as create"),
        }
    }

    /// Submit an AGS without waiting: returns a handle whose
    /// [`AgsHandle::wait`] blocks for the outcome. Useful for pipelining
    /// many independent statements (each is still one ordered multicast).
    pub fn execute_async(&self, ags: &Ags) -> AgsHandle {
        let (rx, local) = self.submit(&Request::Ags(ags.clone()));
        AgsHandle {
            rx,
            trace: linda_obs::TraceId::new(self.host.0, local),
        }
    }

    /// Execute an AGS with a client-side deadline. On `Timeout` the AGS
    /// remains blocked at the replicas and may fire later (its effects
    /// then occur without a visible completion).
    pub fn execute_timeout(&self, ags: &Ags, t: Duration) -> Result<AgsOutcome, FtError> {
        let (rx, _) = self.submit(&Request::Ags(ags.clone()));
        match self.await_ok(rx, Some(t))? {
            CompletionOk::Ags(o) => Ok(o),
            CompletionOk::Ts(_) => unreachable!("AGS resolved as create"),
        }
    }

    // ----- classic Linda sugar over AGSs ---------------------------------

    /// Linda `out` to a stable space: `⟨ true ⇒ out(ts, tuple) ⟩`.
    pub fn out(&self, ts: TsId, tuple: Tuple) -> Result<(), FtError> {
        let template = tuple
            .into_fields()
            .into_iter()
            .map(Operand::Const)
            .collect();
        self.execute(&Ags::out_one(ts, template)).map(|_| ())
    }

    /// Blocking Linda `in` on a stable space. Returns the full withdrawn
    /// tuple (actuals re-attached to the bound formals).
    pub fn in_(&self, ts: TsId, pattern: &Pattern) -> Result<Tuple, FtError> {
        let ags = Ags::in_one(ts, pattern_fields(pattern))?;
        let out = self.execute(&ags)?;
        Ok(rebuild_tuple(pattern, &out.bindings))
    }

    /// Blocking Linda `rd` on a stable space.
    pub fn rd(&self, ts: TsId, pattern: &Pattern) -> Result<Tuple, FtError> {
        let ags = Ags::rd_one(ts, pattern_fields(pattern))?;
        let out = self.execute(&ags)?;
        Ok(rebuild_tuple(pattern, &out.bindings))
    }

    /// Strong `inp`: a `None` is an absolute guarantee that no matching
    /// tuple existed at this point of the total order (paper §5: of other
    /// distributed Linda implementations, only PLinda offers this).
    pub fn inp(&self, ts: TsId, pattern: &Pattern) -> Result<Option<Tuple>, FtError> {
        let ags = Ags::inp_one(ts, pattern_fields(pattern))?;
        let out = self.execute(&ags)?;
        Ok((out.branch == 0).then(|| rebuild_tuple(pattern, &out.bindings)))
    }

    /// Strong `rdp` (see [`Runtime::inp`]).
    pub fn rdp(&self, ts: TsId, pattern: &Pattern) -> Result<Option<Tuple>, FtError> {
        let ags = Ags::rdp_one(ts, pattern_fields(pattern))?;
        let out = self.execute(&ags)?;
        Ok((out.branch == 0).then(|| rebuild_tuple(pattern, &out.bindings)))
    }

    // ----- scratch spaces -------------------------------------------------

    /// Create a volatile, host-local scratch tuple space. The returned
    /// [`LocalSpace`] is the direct (cheap, unreplicated) interface; the
    /// [`ScratchId`] lets AGS bodies `out`/`move` into it.
    pub fn create_scratch(&self) -> (ScratchId, LocalSpace) {
        let id = ScratchId(
            self.shared
                .next_scratch
                .fetch_add(1, AtomicOrdering::Relaxed),
        );
        let space = LocalSpace::new();
        self.shared
            .kernel
            .lock()
            .register_scratch(id, space.clone());
        (id, space)
    }

    // ----- introspection ---------------------------------------------------

    /// Deterministic digest of this host's replica state (tests).
    pub fn digest(&self) -> u64 {
        self.shared.kernel.lock().digest()
    }

    /// Number of tuples in a stable space at this replica.
    pub fn stable_len(&self, ts: TsId) -> Option<usize> {
        self.shared.kernel.lock().stable_len(ts)
    }

    /// Snapshot a stable space at this replica.
    pub fn snapshot(&self, ts: TsId) -> Option<Vec<Tuple>> {
        self.shared.kernel.lock().snapshot(ts)
    }

    /// Number of blocked AGSs at this replica.
    pub fn blocked_len(&self) -> usize {
        self.shared.kernel.lock().blocked_len()
    }

    /// Sequence number of the last applied record.
    pub fn applied_seq(&self) -> u64 {
        self.shared.kernel.lock().applied_seq()
    }

    /// Block until this replica has applied at least `seq` (e.g. a lagging
    /// or restarted host catching up to `other.applied_seq()`). Returns
    /// `false` if the deadline passes first.
    pub fn wait_applied(&self, seq: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.applied_seq() >= seq {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Deep introspection snapshot of this replica: per-space signature
    /// census, match-cost totals, and the blocked-AGS table with ages.
    /// `None` when the runtime was built with introspection disabled.
    pub fn introspect(&self) -> Option<IntrospectReport> {
        if !self.shared.config.introspection {
            return None;
        }
        Some(self.shared.kernel.lock().introspect())
    }

    /// The `/introspect` JSON payload: the [`Runtime::introspect`] report
    /// plus the top-`k` hottest signatures across all spaces (by current
    /// occupancy). `None` when introspection is disabled.
    pub fn introspect_json(&self, top_k: usize) -> Option<String> {
        let r = self.introspect()?;
        let mut out = String::with_capacity(512);
        out.push_str(&format!(
            "{{\"host\":{},\"applied_seq\":{},\"spaces\":[",
            r.host.0, r.applied
        ));
        for (i, s) in r.spaces.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"name\":\"{}\",\"tuples\":{},\"match\":{{\
                 \"attempts\":{},\"probes\":{},\"hits\":{},\"cache_hits\":{},\
                 \"efficiency_bp\":{}}},\"index\":{{\"value_indexes\":{},\
                 \"index_builds\":{},\"miss_cached\":{}}},\
                 \"signatures\":[",
                s.id.0,
                linda_obs::json_escape(&s.name),
                s.tuples,
                s.match_stats.attempts,
                s.match_stats.probes,
                s.match_stats.hits,
                s.match_stats.cache_hits,
                s.match_stats.efficiency_bp(),
                s.index.value_indexes,
                s.index.index_builds,
                s.index.miss_cached,
            ));
            for (j, occ) in s.signatures.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"signature\":\"{}\",\"count\":{},\"high_water\":{}}}",
                    linda_obs::json_escape(&occ.signature.to_string()),
                    occ.count,
                    occ.high_water
                ));
            }
            out.push_str("]}");
        }
        out.push_str("],\"blocked\":[");
        for (i, b) in r.blocked.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"seq\":{},\"origin\":{},\"local\":{},\"age_ms\":{},\
                 \"guards\":\"{}\",\"nearest_miss\":{},\"starving\":{}}}",
                b.seq,
                b.origin.0,
                b.local,
                b.age.as_millis(),
                linda_obs::json_escape(&b.guards),
                b.nearest_miss,
                b.starving
            ));
        }
        // Hottest signatures across all spaces, by current occupancy.
        let mut hot: Vec<(&str, &linda_space::SignatureOccupancy)> = r
            .spaces
            .iter()
            .flat_map(|s| s.signatures.iter().map(move |occ| (s.name.as_str(), occ)))
            .collect();
        hot.sort_by(|a, b| b.1.count.cmp(&a.1.count).then_with(|| a.0.cmp(b.0)));
        out.push_str("],\"hot_signatures\":[");
        for (i, (space, occ)) in hot.into_iter().take(top_k).enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"space\":\"{}\",\"signature\":\"{}\",\"count\":{}}}",
                linda_obs::json_escape(space),
                linda_obs::json_escape(&occ.signature.to_string()),
                occ.count
            ));
        }
        out.push_str("]}\n");
        Some(out)
    }

    /// Run one starvation-watchdog sweep now (the background thread does
    /// this periodically; tests and operators can force a pass).
    pub fn starvation_sweep(&self, threshold: Duration) -> Vec<ftlinda_kernel::StarvationReport> {
        self.shared.kernel.lock().starvation_sweep(threshold)
    }

    /// The observability configuration this runtime was built with.
    pub fn config(&self) -> &RuntimeConfig {
        &self.shared.config
    }

    /// Applied sequence number and state digest, read under one kernel
    /// lock so they describe the same replica state (used by the
    /// divergence detector: equal seq must imply equal digest).
    pub fn applied_digest(&self) -> (u64, u64) {
        let k = self.shared.kernel.lock();
        (k.applied_seq(), k.digest())
    }

    /// Sequence number of the checkpoint image this host's ordering
    /// member currently holds, or `None` before the first boundary.
    pub fn checkpoint_seq(&self) -> Option<u64> {
        self.member.checkpoint_seq()
    }

    /// This host's log-compaction watermark: ordered records at or below
    /// it have been truncated and are served from the checkpoint.
    pub fn log_base(&self) -> u64 {
        self.member.log_base()
    }

    /// Number of ordered records currently retained in this host's log
    /// (bounded under compaction).
    pub fn retained_log_len(&self) -> usize {
        self.member.retained_log_len()
    }

    // ----- observability ----------------------------------------------------

    /// This host's metrics/event registry (shared with the sequencer
    /// member and the kernel).
    pub fn obs(&self) -> Arc<linda_obs::Registry> {
        self.shared.obs.clone()
    }

    /// Render this host's metrics in Prometheus text exposition format.
    pub fn metrics_text(&self) -> String {
        self.shared.obs.render()
    }

    /// If this (restarted) host exhausted its rejoin retry budget without
    /// finding a live peer, the error message describing the give-up.
    pub fn rejoin_error(&self) -> Option<String> {
        self.member.rejoin_error()
    }

    /// Deposit a tuple directly into this replica's copy of a stable
    /// space, bypassing the total order. Returns `false` if the space
    /// does not exist here. **Test hook**: this deliberately breaks
    /// replica determinism so divergence detection can be exercised.
    #[doc(hidden)]
    pub fn fault_inject_local(&self, ts: TsId, t: Tuple) -> bool {
        self.shared.kernel.lock().fault_inject(ts, t)
    }

    /// Stop the apply thread (cluster teardown).
    pub fn shutdown(&self) {
        self.shared.alive.store(false, AtomicOrdering::Relaxed);
        self.member.stop();
        let mut w = self.shared.waiting.lock();
        for (_, (tx, _)) in w.drain() {
            let _ = tx.send(Err(FtError::Shutdown));
        }
    }
}

/// An in-flight AGS submitted with [`Runtime::execute_async`].
pub struct AgsHandle {
    rx: Receiver<Result<CompletionOk, FtError>>,
    trace: linda_obs::TraceId,
}

impl AgsHandle {
    /// The causal trace id of this AGS — the key for `/trace/<id>` on the
    /// cluster's HTTP exporters and [`crate::Cluster::trace`].
    pub fn trace_id(&self) -> linda_obs::TraceId {
        self.trace
    }
    /// Block for the outcome.
    pub fn wait(self) -> Result<AgsOutcome, FtError> {
        match self.rx.recv().map_err(|_| FtError::Shutdown)?? {
            CompletionOk::Ags(o) => Ok(o),
            CompletionOk::Ts(_) => unreachable!("AGS resolved as create"),
        }
    }

    /// Block with a deadline (see [`Runtime::execute_timeout`] caveats).
    pub fn wait_timeout(self, t: Duration) -> Result<AgsOutcome, FtError> {
        match self.rx.recv_timeout(t) {
            Ok(r) => match r? {
                CompletionOk::Ags(o) => Ok(o),
                CompletionOk::Ts(_) => unreachable!("AGS resolved as create"),
            },
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => Err(FtError::Timeout),
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => Err(FtError::Shutdown),
        }
    }

    /// Whether the outcome has arrived (non-blocking probe).
    pub fn is_ready(&self) -> bool {
        !self.rx.is_empty()
    }
}

/// Convert a plain [`Pattern`] into AGS match fields.
pub fn pattern_fields(p: &Pattern) -> Vec<MatchField> {
    p.fields()
        .iter()
        .map(|f| match f {
            PatField::Actual(v) => MatchField::Expr(Operand::Const(v.clone())),
            PatField::Formal(t) => MatchField::Bind(*t),
        })
        .collect()
}

/// Reassemble the matched tuple from a pattern and the bound formals.
pub fn rebuild_tuple(p: &Pattern, bindings: &[Value]) -> Tuple {
    let mut bi = 0;
    Tuple::new(
        p.fields()
            .iter()
            .map(|f| match f {
                PatField::Actual(v) => v.clone(),
                PatField::Formal(_) => {
                    let v = bindings[bi].clone();
                    bi += 1;
                    v
                }
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use linda_tuple::{pat, tuple, TypeTag};

    #[test]
    fn pattern_fields_roundtrip() {
        let p = pat!("job", ?int, 2.5);
        let fields = pattern_fields(&p);
        assert_eq!(fields.len(), 3);
        assert!(matches!(fields[1], MatchField::Bind(TypeTag::Int)));
    }

    #[test]
    fn rebuild_tuple_interleaves() {
        let p = pat!("job", ?int, "x", ?str);
        let t = rebuild_tuple(&p, &[Value::Int(4), Value::Str("s".into())]);
        assert_eq!(t, tuple!("job", 4, "x", "s"));
    }

    #[test]
    fn rebuild_all_actuals() {
        let p = pat!("a", 1);
        assert_eq!(rebuild_tuple(&p, &[]), tuple!("a", 1));
    }
}

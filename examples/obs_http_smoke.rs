//! HTTP-exporter smoke target for CI: boot a 3-member cluster, drive
//! enough traffic that every pipeline histogram has samples, print each
//! member's scrape address as a `MEMBER <host> <addr>` line, then keep
//! the cluster alive so an external scraper (`scripts/ci.sh` uses
//! `curl`) can hit `/metrics`, `/healthz`, `/events` and `/trace/<id>`.
//!
//! ```text
//! cargo run --example obs_http_smoke            # serve for 5 s
//! OBS_SMOKE_SECS=30 cargo run --example obs_http_smoke
//! ```
//!
//! A `TRACE <id>` line names one AGS whose span tree is complete across
//! the cluster, so the scraper can exercise `/trace/<id>` too. One
//! never-matching `in` is left parked so `/introspect` serves a
//! non-empty blocked-AGS table and the starvation watchdog (threshold
//! lowered to 1 s here) emits `ags_starving` while the cluster idles.
//!
//! The cluster runs with two shards, and one cross-shard AGS is driven
//! so `/trace/<id>` of the printed `XTRACE <id>` line shows the
//! XLock/XExec/XRelease lanes on both shards. The time-series sampler
//! ticks every 200 ms so `/timeseries` accumulates several snapshots
//! within the serving window.

use ftlinda::{Ags, Cluster, MatchField, Operand, TypeTag};
use std::time::Duration;

fn main() {
    let secs: u64 = std::env::var("OBS_SMOKE_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let (cluster, rts) = Cluster::builder()
        .hosts(3)
        .shards(2)
        .starvation_after(Duration::from_secs(1))
        .timeseries_interval(Duration::from_millis(200))
        .build();
    let ts = rts[0].create_stable_ts("main").unwrap();

    // Concurrent submits so the batch histograms (`ftlinda_batch_size`,
    // `ftlinda_batch_flush_seconds`) get real samples under the default
    // group-commit config.
    let handles: Vec<_> = (0..32i64)
        .map(|i| {
            rts[(i % 3) as usize].execute_async(&Ags::out_one(
                ts,
                vec![Operand::cst("job"), Operand::cst(i)],
            ))
        })
        .collect();
    let sample_trace = handles[0].trace_id();
    for h in handles {
        h.wait().unwrap();
    }
    for rt in &rts {
        assert!(rt.wait_applied(rts[0].applied_seq(), Duration::from_secs(5)));
    }

    // Park one guard that can never fire — ("job", -1) is never
    // deposited — so the blocked-AGS table and ags_starving events have
    // something to show. The handle is dropped, not awaited; shutdown
    // resolves it.
    let parked = rts[1].execute_async(
        &Ags::in_one(ts, vec![MatchField::actual("job"), MatchField::actual(-1)]).unwrap(),
    );
    drop(parked);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while rts.iter().any(|rt| rt.blocked_len() == 0) {
        assert!(
            std::time::Instant::now() < deadline,
            "parked guard never blocked"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // One cross-shard AGS: the guard `in` consumes a `[Str, Int]` tuple,
    // the body `out` deposits `[Str, Str]` — under two shards those
    // signatures live on different shards, so the commit runs the
    // XLock/XExec/XRelease protocol and leaves a transaction trace with
    // a span lane per shard. Its id is printed as `XTRACE`.
    rts[0].out(ts, linda_tuple::tuple!("x", 41)).unwrap();
    let cross = Ags::builder()
        .guard_in(
            ts,
            vec![MatchField::actual("x"), MatchField::bind(TypeTag::Int)],
        )
        .out(ts, vec![Operand::cst("y"), Operand::cst("done")])
        .build()
        .unwrap();
    rts[1].execute(&cross).unwrap();
    let xtrace = rts[1]
        .obs()
        .spans()
        .recent()
        .into_iter()
        .rev()
        .find(|s| s.stage == "xbegin")
        .expect("cross-shard commit recorded xbegin")
        .trace;

    for rt in &rts {
        let addr = cluster
            .http_addr(rt.host())
            .expect("exporter bound for every member");
        println!("MEMBER {} {addr}", rt.host().0);
    }
    println!("TRACE {sample_trace}");
    println!("XTRACE {xtrace}");
    println!("SERVING {secs}s");

    std::thread::sleep(Duration::from_secs(secs));
    cluster.shutdown();
    println!("DONE");
}

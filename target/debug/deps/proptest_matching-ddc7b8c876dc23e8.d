/root/repo/target/debug/deps/proptest_matching-ddc7b8c876dc23e8.d: tests/proptest_matching.rs

/root/repo/target/debug/deps/proptest_matching-ddc7b8c876dc23e8: tests/proptest_matching.rs

tests/proptest_matching.rs:

/root/repo/target/debug/deps/linda_obs-121c5f11f0207f3b.d: crates/obs/src/lib.rs

/root/repo/target/debug/deps/liblinda_obs-121c5f11f0207f3b.rlib: crates/obs/src/lib.rs

/root/repo/target/debug/deps/liblinda_obs-121c5f11f0207f3b.rmeta: crates/obs/src/lib.rs

crates/obs/src/lib.rs:

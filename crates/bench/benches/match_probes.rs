//! Probes-per-attempt: the price of a tuple lookup as the space grows.
//!
//! The paper's implementation chapter argues that hash-based tuple
//! matching keeps `in`/`rd` cost roughly independent of tuple-space
//! size, while a naive linear store degrades with every resident tuple.
//! The match-probe counters added to both stores let us measure that
//! directly: for 10 / 1 000 / 100 000 resident tuples spread over 64
//! distinct head values, we count how many tuples each store *examines*
//! per `rd` across four cases:
//!
//! - `hit` — head-constant pattern with a formal payload; the head index
//!   resolves it in O(1).
//! - `second_hit` — both fields constant and present; exercises probing
//!   within one head bucket (and the value index once promoted).
//! - `miss` — both fields constant, payload absent, a *different* absent
//!   payload every iteration. Defeats the miss cache on purpose so the
//!   cost shown is the value index's: after one expensive scan promotes
//!   the bucket, each fresh miss is a hash lookup that finds no
//!   candidates at all.
//! - `repeated_miss` — the *same* absent payload every iteration; the
//!   antituple cache answers after the first scan, so the amortized
//!   probe count must stay ≤ 1.
//!
//! Besides the printed table, the run writes a `BENCH_match_probes.json`
//! artifact (to `$BENCH_MATCH_PROBES_JSON` or the working directory).
//! The probe budgets asserted below double as the CI regression gate
//! (`cargo bench -p linda-bench --bench match_probes -- --test`).

use criterion::{criterion_group, criterion_main, Criterion};
use linda_space::{IndexedStore, LinearStore, Store};
use linda_tuple::{pat, tuple, Pattern};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const SIZES: [usize; 3] = [10, 1_000, 100_000];
const HEADS: usize = 64;

/// CI budget: amortized probes per attempt for the indexed store's
/// repeated miss — the miss cache must answer all but the seeding scan.
const BUDGET_REPEATED_MISS_PROBES: f64 = 1.0;
/// CI budget: probes per attempt for a fresh indexed miss at 100 k
/// tuples once the value index has been promoted.
const BUDGET_INDEXED_MISS_100K_PROBES: f64 = 8.0;
/// CI budget: ns per op for a fresh indexed miss at 100 k tuples.
const BUDGET_INDEXED_MISS_100K_NS: f64 = 10_000.0;

struct Point {
    store: &'static str,
    tuples: usize,
    case: &'static str,
    attempts: u64,
    probes: u64,
    cache_hits: u64,
    ns_per_op: f64,
}

impl Point {
    fn probes_per_attempt(&self) -> f64 {
        self.probes as f64 / self.attempts.max(1) as f64
    }
}

fn fill(store: &mut dyn Store, n: usize) {
    for i in 0..n {
        store.insert(tuple!(format!("key{}", i % HEADS), i as i64));
    }
}

/// Repeat `rd`, cycling through `pats`, and return the
/// (attempts, probes, cache_hits, ns/op) deltas.
fn measure(store: &dyn Store, pats: &[Pattern], iters: usize) -> (u64, u64, u64, f64) {
    let before = store.match_stats();
    let t0 = Instant::now();
    for i in 0..iters {
        std::hint::black_box(store.read(std::hint::black_box(&pats[i % pats.len()])));
    }
    let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
    let d = store.match_stats().since(&before);
    (d.attempts, d.probes, d.cache_hits, ns)
}

fn run_store(store: &mut dyn Store, name: &'static str, n: usize, out: &mut Vec<Point>) {
    fill(store, n);
    // Keep total probe work bounded as n grows.
    let iters = (1_000_000 / n.max(1)).clamp(20, 10_000);
    // Hit: formal payload; head "key9" exists for every size.
    let hit = vec![pat!("key9", ?int)];
    // Second-field hit: ("key9", 9) is resident (and the oldest in its
    // head bucket) for every size.
    let second_hit = vec![pat!("key9", 9)];
    // Fresh miss every iteration: distinct absent payloads, so the miss
    // cache never answers and the value index does the work.
    let miss: Vec<Pattern> = (0..iters).map(|i| pat!("key9", -(1 + i as i64))).collect();
    // Same absent payload every iteration: the miss cache's home turf.
    let repeated_miss = vec![pat!("key9", -1)];
    let cases: [(&'static str, &[Pattern]); 4] = [
        ("hit", &hit),
        ("second_hit", &second_hit),
        ("miss", &miss),
        ("repeated_miss", &repeated_miss),
    ];
    for (case, pats) in cases {
        // One unmeasured attempt: lets the expensive first scan promote
        // the value index / seed the miss cache, so the measured figures
        // show steady-state cost. (Uses a payload the measured loop
        // never reuses, so the "miss" case stays uncached.)
        let warm = pat!("key9", -1_000_000);
        std::hint::black_box(store.read(std::hint::black_box(&warm)));
        std::hint::black_box(store.read(std::hint::black_box(&pats[0])));
        let (attempts, probes, cache_hits, ns) = measure(store, pats, iters);
        out.push(Point {
            store: name,
            tuples: n,
            case,
            attempts,
            probes,
            cache_hits,
            ns_per_op: ns,
        });
    }
    store.clear();
}

fn write_artifact(points: &[Point]) {
    let mut json = String::from("{\n  \"bench\": \"match_probes\",\n");
    let _ = writeln!(json, "  \"heads\": {HEADS},\n  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"store\": \"{}\", \"tuples\": {}, \"case\": \"{}\", \
             \"attempts\": {}, \"probes\": {}, \"cache_hits\": {}, \
             \"probes_per_attempt\": {:.3}, \"ns_per_op\": {:.1}}}{comma}",
            p.store,
            p.tuples,
            p.case,
            p.attempts,
            p.probes,
            p.cache_hits,
            p.probes_per_attempt(),
            p.ns_per_op,
        );
    }
    json.push_str("  ]\n}\n");
    let path = std::env::var("BENCH_MATCH_PROBES_JSON")
        .unwrap_or_else(|_| "BENCH_match_probes.json".into());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    println!("\nProbes per attempt — {HEADS} head values, four lookup cases:");
    println!(
        "    {:<9} {:>8} {:>14} {:>10} {:>16} {:>11} {:>12}",
        "store", "tuples", "case", "attempts", "probes/attempt", "cache_hits", "ns/op"
    );
    let mut points = Vec::new();
    for n in SIZES {
        run_store(&mut IndexedStore::new(), "indexed", n, &mut points);
        run_store(&mut LinearStore::new(), "linear", n, &mut points);
    }
    for p in &points {
        println!(
            "    {:<9} {:>8} {:>14} {:>10} {:>16.3} {:>11} {:>12.1}",
            p.store,
            p.tuples,
            p.case,
            p.attempts,
            p.probes_per_attempt(),
            p.cache_hits,
            p.ns_per_op,
        );
    }
    println!();
    // The claims under test: the indexed store's probe count stays flat
    // (head bucket, then value index once promoted) while the linear
    // store degrades with the resident-tuple count; repeated misses
    // amortize to zero probes through the antituple cache.
    for n in SIZES {
        let point = |store: &str, case: &str| {
            points
                .iter()
                .find(|p| p.store == store && p.tuples == n && p.case == case)
                .unwrap()
        };
        let probes = |store: &str, case: &str| point(store, case).probes_per_attempt();
        assert!(
            probes("indexed", "hit") <= 2.0,
            "indexed hit at {n} tuples should probe O(1) (head index)"
        );
        assert!(
            probes("indexed", "second_hit") <= 2.0,
            "indexed second-field hit at {n} tuples should probe O(1)"
        );
        assert!(
            probes("indexed", "miss") <= (n / HEADS) as f64 + 1.0,
            "indexed miss at {n} tuples is bounded by one head bucket"
        );
        assert!(
            probes("indexed", "repeated_miss") <= BUDGET_REPEATED_MISS_PROBES,
            "indexed repeated miss at {n} tuples must be answered by the \
             miss cache (≤ {BUDGET_REPEATED_MISS_PROBES} probes/attempt amortized)"
        );
        assert!(
            point("indexed", "repeated_miss").cache_hits
                >= point("indexed", "repeated_miss").attempts,
            "every measured repeated miss should be a cache hit"
        );
        assert!(
            probes("linear", "miss") >= n as f64,
            "linear miss must scan the whole store"
        );
        if n >= 1_000 {
            assert!(
                probes("indexed", "miss") < probes("linear", "miss"),
                "index must beat linear scan at {n} tuples"
            );
        }
        if n >= 100_000 {
            assert!(
                probes("indexed", "miss") <= BUDGET_INDEXED_MISS_100K_PROBES,
                "value index must keep fresh 100k-tuple misses O(1): got \
                 {:.3} probes/attempt",
                probes("indexed", "miss")
            );
            assert!(
                point("indexed", "miss").ns_per_op <= BUDGET_INDEXED_MISS_100K_NS,
                "fresh 100k-tuple indexed miss budget is {BUDGET_INDEXED_MISS_100K_NS} ns/op: got {:.1}",
                point("indexed", "miss").ns_per_op
            );
        }
    }
    write_artifact(&points);

    // Criterion angle: one rd against 1k resident tuples per store.
    let mut g = c.benchmark_group("match_probes");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    let mut indexed = IndexedStore::new();
    fill(&mut indexed, 1_000);
    let mut linear = LinearStore::new();
    fill(&mut linear, 1_000);
    let miss = pat!("key9", -1);
    g.bench_function("indexed_repeated_miss_1k", |b| {
        b.iter(|| std::hint::black_box(indexed.read(std::hint::black_box(&miss))))
    });
    g.bench_function("linear_miss_1k", |b| {
        b.iter(|| std::hint::black_box(linear.read(std::hint::black_box(&miss))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

/root/repo/target/debug/liblinda_obs.rlib: /root/repo/crates/obs/src/lib.rs

/root/repo/target/debug/deps/ft_overhead-dced12b965c2621d.d: crates/bench/benches/ft_overhead.rs

/root/repo/target/debug/deps/ft_overhead-dced12b965c2621d: crates/bench/benches/ft_overhead.rs

crates/bench/benches/ft_overhead.rs:

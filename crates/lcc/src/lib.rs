//! # ft-lcc
//!
//! An FT-lcc-style precompiler front-end: compiles a textual Linda DSL —
//! an ASCII rendition of the paper's notation — into validated AGS IR,
//! performing the same two tasks the paper attributes to FT-lcc (§5.2):
//! signature analysis (cataloging the ordered type list of every pattern
//! in the program) and AGS→opcode compilation.
//!
//! ```
//! use ft_lcc::Compiler;
//!
//! let mut c = Compiler::new();
//! let prog = c.compile(r#"
//!     stable ts;
//!     out(ts, "count", 0);
//!     < in(ts, "count", ?int old) => out(ts, "count", old + 1) >
//! "#).unwrap();
//! assert_eq!(prog.statements.len(), 2);
//! assert!(prog.catalog.len() >= 1);
//! ```

#![warn(missing_docs)]

mod lexer;
mod parser;
pub mod pretty;
pub mod routing;

pub use lexer::{lex, LexError, TokKind, Token};
pub use parser::{CompileError, Compiler, Program};
pub use pretty::{print_ags, SpaceNames};
pub use routing::{shard_report, Route, ShardReport, StatementRoute};

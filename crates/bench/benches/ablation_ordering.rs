//! A1 — ordering-protocol ablation: fixed sequencer vs ISIS agreed
//! timestamps.
//!
//! DESIGN.md §6 calls out the total-order protocol as a replaceable
//! design choice. The sequencer costs n messages and ~1.5 hops per
//! broadcast; ISIS costs 3n messages and 2 round trips but has no
//! coordinator. Expected shape: sequencer wins on both latency and
//! messages at every group size; the gap in messages is exactly 3×.

use bytes::Bytes;
use consul_sim::{Delivery, IsisGroup, NetConfig, SeqGroup};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn wait_own(rx: &crossbeam::channel::Receiver<Delivery>, local: u64, me: consul_sim::HostId) {
    loop {
        match rx.recv_timeout(Duration::from_secs(5)).expect("delivery") {
            Delivery::App {
                origin, local: l, ..
            } if origin == me && l == local => return,
            _ => continue,
        }
    }
}

fn bench(c: &mut Criterion) {
    println!("\nA1 — total-order protocols, messages per broadcast:");
    for n in [3u32, 5] {
        let (sg, sm) = SeqGroup::new(n, NetConfig::instant());
        sg.net().stats().reset();
        let l = sm[1].broadcast(Bytes::from_static(b"m"));
        wait_own(sm[1].deliveries(), l, sm[1].host());
        std::thread::sleep(Duration::from_millis(30));
        let (seq_msgs, _) = sg.net().stats().snapshot();
        sg.shutdown();

        let (ig, im) = IsisGroup::new(n, NetConfig::instant());
        ig.net().stats().reset();
        let l = im[1].broadcast(Bytes::from_static(b"m"));
        wait_own(im[1].deliveries(), l, im[1].host());
        std::thread::sleep(Duration::from_millis(30));
        let (isis_msgs, _) = ig.net().stats().snapshot();
        ig.shutdown();

        linda_bench::print_row(
            &format!("{n} members"),
            format!("sequencer {seq_msgs} msgs, ISIS {isis_msgs} msgs"),
        );
        assert_eq!(isis_msgs, 3 * n as u64);
    }

    let mut g = c.benchmark_group("ablation_ordering");
    g.sample_size(15).measurement_time(Duration::from_secs(2));
    for n in [3u32, 5, 7] {
        let (sg, sm) = SeqGroup::new(n, NetConfig::lan(Duration::from_micros(100)));
        g.bench_function(format!("sequencer_{n}"), |b| {
            b.iter(|| {
                let l = sm[1].broadcast(Bytes::from_static(b"payload"));
                wait_own(sm[1].deliveries(), l, sm[1].host());
            })
        });
        sg.shutdown();

        let (ig, im) = IsisGroup::new(n, NetConfig::lan(Duration::from_micros(100)));
        g.bench_function(format!("isis_{n}"), |b| {
            b.iter(|| {
                let l = im[1].broadcast(Bytes::from_static(b"payload"));
                wait_own(im[1].deliveries(), l, im[1].host());
            })
        });
        ig.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

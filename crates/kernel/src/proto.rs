//! The request protocol carried inside ordered multicast payloads.
//!
//! Every client interaction with stable tuple spaces is one of these
//! requests, encoded into the single multicast message the paper's design
//! calls for. All replicas decode and apply the same request at the same
//! sequence number.
//!
//! Requests 2–5 exist only under sharded deployments (`shards(K)` with
//! K > 1): `RegisterTs` propagates a space id assigned on shard 0 to the
//! other shards, and `XLock`/`XExec`/`XRelease` are the three legs of the
//! cross-shard commit protocol for AGSs whose signature keys span more
//! than one shard (see DESIGN.md §13).

use bytes::{Buf, BufMut};
use ftlinda_ags::{decode_ags, get_ags, put_ags, Ags, WireError};
use linda_tuple::{get_tuple, get_uvarint, put_tuple, put_uvarint, DecodeError, Tuple};

/// One signature bucket in flight between shards during a cross-shard
/// commit: `(space id, signature stable-hash, tuples oldest-first)`.
pub type SigBucket = (u32, u64, Vec<Tuple>);

/// A command for the replicated tuple-space state machine.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Create (or look up) a stable tuple space by name. Idempotent: the
    /// same name always resolves to the same id. The id is assigned
    /// deterministically by creation order in the total order.
    CreateTs {
        /// Human-readable space name.
        name: String,
    },
    /// Execute an atomic guarded statement.
    Ags(Ags),
    /// Install a space id assigned elsewhere (shard 0 allocates ids via
    /// `CreateTs`; the runtime then registers the same id on every other
    /// shard so `TsId`s mean the same thing on all K orderings).
    /// Idempotent by both id and name.
    RegisterTs {
        /// The id shard 0 assigned.
        id: u32,
        /// Space name.
        name: String,
    },
    /// Cross-shard leg 1: check out the listed signature buckets and
    /// freeze this shard until the matching `XRelease`. Only the keys
    /// this shard owns are listed.
    XLock {
        /// Origin-chosen transaction id (unique per origin attempt).
        xid: u64,
        /// `(space, signature-hash)` buckets to check out.
        keys: Vec<(u32, u64)>,
    },
    /// Cross-shard leg 2, applied on the home (lowest-id) shard: install
    /// the checked-out foreign buckets, execute the AGS, and extract the
    /// foreign buckets back out as writebacks.
    XExec {
        /// Same transaction id as the locks.
        xid: u64,
        /// The cross-shard AGS.
        ags: Ags,
        /// Buckets checked out of the participant shards.
        foreign: Vec<SigBucket>,
    },
    /// Cross-shard leg 3: reinstall the (possibly rewritten) buckets on
    /// a participant shard and unfreeze it.
    XRelease {
        /// Same transaction id as the lock.
        xid: u64,
        /// Buckets to reinstall, oldest-first per bucket.
        buckets: Vec<SigBucket>,
    },
}

fn put_keys(buf: &mut Vec<u8>, keys: &[(u32, u64)]) {
    put_uvarint(buf, keys.len() as u64);
    for (ts, sig) in keys {
        put_uvarint(buf, *ts as u64);
        buf.put_u64(*sig);
    }
}

fn get_keys(bytes: &mut &[u8]) -> Result<Vec<(u32, u64)>, WireError> {
    let n = get_uvarint(bytes)? as usize;
    let mut keys = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let ts = get_uvarint(bytes)? as u32;
        if bytes.len() < 8 {
            return Err(WireError::Codec(DecodeError::UnexpectedEof));
        }
        keys.push((ts, bytes.get_u64()));
    }
    Ok(keys)
}

fn put_buckets(buf: &mut Vec<u8>, buckets: &[SigBucket]) {
    put_uvarint(buf, buckets.len() as u64);
    for (ts, sig, tuples) in buckets {
        put_uvarint(buf, *ts as u64);
        buf.put_u64(*sig);
        put_uvarint(buf, tuples.len() as u64);
        for t in tuples {
            put_tuple(buf, t);
        }
    }
}

fn get_buckets(bytes: &mut &[u8]) -> Result<Vec<SigBucket>, WireError> {
    let n = get_uvarint(bytes)? as usize;
    let mut buckets = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let ts = get_uvarint(bytes)? as u32;
        if bytes.len() < 8 {
            return Err(WireError::Codec(DecodeError::UnexpectedEof));
        }
        let sig = bytes.get_u64();
        let count = get_uvarint(bytes)? as usize;
        let mut tuples = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            tuples.push(get_tuple(bytes)?);
        }
        buckets.push((ts, sig, tuples));
    }
    Ok(buckets)
}

/// Encode a request into a fresh buffer.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    match req {
        Request::CreateTs { name } => {
            buf.put_u8(0);
            put_uvarint(&mut buf, name.len() as u64);
            buf.put_slice(name.as_bytes());
        }
        Request::Ags(ags) => {
            buf.put_u8(1);
            put_ags(&mut buf, ags);
        }
        Request::RegisterTs { id, name } => {
            buf.put_u8(2);
            put_uvarint(&mut buf, *id as u64);
            put_uvarint(&mut buf, name.len() as u64);
            buf.put_slice(name.as_bytes());
        }
        Request::XLock { xid, keys } => {
            buf.put_u8(3);
            buf.put_u64(*xid);
            put_keys(&mut buf, keys);
        }
        Request::XExec { xid, ags, foreign } => {
            buf.put_u8(4);
            buf.put_u64(*xid);
            put_ags(&mut buf, ags);
            put_buckets(&mut buf, foreign);
        }
        Request::XRelease { xid, buckets } => {
            buf.put_u8(5);
            buf.put_u64(*xid);
            put_buckets(&mut buf, buckets);
        }
    }
    buf
}

fn get_name(bytes: &mut &[u8]) -> Result<String, WireError> {
    let n = get_uvarint(bytes)? as usize;
    if n > bytes.len() {
        return Err(WireError::Codec(DecodeError::LengthOverrun {
            declared: n,
            remaining: bytes.len(),
        }));
    }
    let name = std::str::from_utf8(&bytes[..n])
        .map_err(|_| WireError::Codec(DecodeError::BadUtf8))?
        .to_owned();
    bytes.advance(n);
    Ok(name)
}

fn get_xid(bytes: &mut &[u8]) -> Result<u64, WireError> {
    if bytes.len() < 8 {
        return Err(WireError::Codec(DecodeError::UnexpectedEof));
    }
    Ok(bytes.get_u64())
}

/// Decode a request; validates embedded AGSs.
pub fn decode_request(mut bytes: &[u8]) -> Result<Request, WireError> {
    if bytes.is_empty() {
        return Err(WireError::Codec(DecodeError::UnexpectedEof));
    }
    let tag = bytes.get_u8();
    match tag {
        0 => Ok(Request::CreateTs {
            name: get_name(&mut bytes)?,
        }),
        1 => Ok(Request::Ags(decode_ags(bytes)?)),
        2 => {
            let id = get_uvarint(&mut bytes)? as u32;
            Ok(Request::RegisterTs {
                id,
                name: get_name(&mut bytes)?,
            })
        }
        3 => {
            let xid = get_xid(&mut bytes)?;
            Ok(Request::XLock {
                xid,
                keys: get_keys(&mut bytes)?,
            })
        }
        4 => {
            let xid = get_xid(&mut bytes)?;
            let ags = get_ags(&mut bytes)?;
            Ok(Request::XExec {
                xid,
                ags,
                foreign: get_buckets(&mut bytes)?,
            })
        }
        5 => {
            let xid = get_xid(&mut bytes)?;
            Ok(Request::XRelease {
                xid,
                buckets: get_buckets(&mut bytes)?,
            })
        }
        other => Err(WireError::BadDiscriminant(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftlinda_ags::{MatchField, Operand, TsId};
    use linda_tuple::tuple;

    #[test]
    fn create_ts_roundtrip() {
        let r = Request::CreateTs {
            name: "main".into(),
        };
        assert_eq!(decode_request(&encode_request(&r)).unwrap(), r);
    }

    #[test]
    fn ags_roundtrip() {
        let ags = Ags::builder()
            .guard_in(
                TsId(0),
                vec![
                    MatchField::actual("c"),
                    MatchField::bind(linda_tuple::TypeTag::Int),
                ],
            )
            .out(TsId(0), vec![Operand::cst("c"), Operand::formal(0).add(1)])
            .build()
            .unwrap();
        let r = Request::Ags(ags);
        assert_eq!(decode_request(&encode_request(&r)).unwrap(), r);
    }

    #[test]
    fn register_ts_roundtrip() {
        let r = Request::RegisterTs {
            id: 7,
            name: "jobs".into(),
        };
        assert_eq!(decode_request(&encode_request(&r)).unwrap(), r);
    }

    #[test]
    fn xlock_roundtrip() {
        let r = Request::XLock {
            xid: 0xdead_beef_0001,
            keys: vec![(0, 42), (3, u64::MAX)],
        };
        assert_eq!(decode_request(&encode_request(&r)).unwrap(), r);
    }

    #[test]
    fn xexec_roundtrip_with_buckets() {
        let ags = Ags::out_one(TsId(1), vec![Operand::cst("x"), Operand::cst(1)]);
        let r = Request::XExec {
            xid: 9,
            ags,
            foreign: vec![
                (1, 77, vec![tuple!("x", 1), tuple!("x", 2)]),
                (2, 88, vec![]),
            ],
        };
        assert_eq!(decode_request(&encode_request(&r)).unwrap(), r);
    }

    #[test]
    fn xrelease_roundtrip() {
        let r = Request::XRelease {
            xid: 1,
            buckets: vec![(0, 5, vec![tuple!("job", 3, 2.5)])],
        };
        assert_eq!(decode_request(&encode_request(&r)).unwrap(), r);
    }

    #[test]
    fn empty_buffer_rejected() {
        assert!(decode_request(&[]).is_err());
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(matches!(
            decode_request(&[9]),
            Err(WireError::BadDiscriminant(9))
        ));
    }

    #[test]
    fn truncated_name_rejected() {
        let mut buf = vec![0u8];
        put_uvarint(&mut buf, 100);
        buf.push(b'x');
        assert!(decode_request(&buf).is_err());
    }

    #[test]
    fn truncated_xlock_rejected() {
        // Tag + 4 bytes of an 8-byte xid.
        assert!(decode_request(&[3, 0, 0, 0, 0]).is_err());
    }
}

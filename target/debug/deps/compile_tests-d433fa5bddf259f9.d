/root/repo/target/debug/deps/compile_tests-d433fa5bddf259f9.d: crates/lcc/tests/compile_tests.rs Cargo.toml

/root/repo/target/debug/deps/libcompile_tests-d433fa5bddf259f9.rmeta: crates/lcc/tests/compile_tests.rs Cargo.toml

crates/lcc/tests/compile_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

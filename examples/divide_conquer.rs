//! Fault-tolerant divide-and-conquer: adaptive quadrature with a crash
//! (paper §4.1).
//!
//! Three hosts integrate sin(x)·x over [0, π] by adaptive interval
//! splitting; every split and every accumulate is one atomic guarded
//! statement that also maintains the ("outstanding", n) termination
//! counter. Host 2 is crashed mid-run; the monitor reassigns its
//! in-progress intervals and the quadrature still converges.
//!
//! ```text
//! cargo run --example divide_conquer
//! ```

use ftlinda::{Cluster, HostId};
use linda_paradigms::DivideConquer;
use std::time::Duration;

fn main() {
    let (cluster, rts) = Cluster::new(3);
    let dc = DivideConquer::create(&rts[0], "quad", 0.0, std::f64::consts::PI).unwrap();
    let monitor = dc.spawn_monitor(rts[0].clone());

    // ∫₀^π x·sin(x) dx = π
    let f = |x: f64| x * x.sin();
    let _w1 = dc.spawn_worker(rts[1].clone(), f, 1e-10);
    let _w2 = dc.spawn_worker(rts[2].clone(), f, 1e-10);

    std::thread::sleep(Duration::from_millis(15));
    println!("crashing host2 mid-integration...");
    cluster.crash(HostId(2));

    let v = dc.wait_result(&rts[1]).unwrap();
    println!(
        "∫ x·sin(x) over [0, π] = {v:.9}  (exact: {:.9})",
        std::f64::consts::PI
    );
    assert!((v - std::f64::consts::PI).abs() < 1e-6);

    dc.stop_monitor(&rts[0]).unwrap();
    let handled = monitor.join().unwrap();
    println!("monitor recovered {handled} failed host(s) — done.");
    cluster.shutdown();
}

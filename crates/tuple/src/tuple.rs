//! Tuples: the unit of communication in Linda.

use crate::signature::Signature;
use crate::value::{TypeTag, Value};
use std::fmt;
use std::ops::Index;

/// An immutable, ordered sequence of [`Value`] fields.
///
/// Tuples are deposited into tuple space with `out` and withdrawn/read with
/// `in`/`rd` by associative match against a [`crate::Pattern`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple {
    fields: Vec<Value>,
}

impl Tuple {
    /// Build a tuple from its fields.
    pub fn new(fields: Vec<Value>) -> Self {
        Tuple { fields }
    }

    /// The empty tuple (arity 0). Legal in Linda, occasionally used as a
    /// pure synchronization token.
    pub fn empty() -> Self {
        Tuple { fields: Vec::new() }
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Whether this tuple has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Borrow the fields.
    pub fn fields(&self) -> &[Value] {
        &self.fields
    }

    /// Consume the tuple, yielding its fields.
    pub fn into_fields(self) -> Vec<Value> {
        self.fields
    }

    /// Field accessor; `None` when out of range.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.fields.get(i)
    }

    /// The type signature of this tuple: its arity plus the ordered list of
    /// field types. Two tuples can only be confused by matching when their
    /// signatures coincide, which is what makes signature-indexed stores
    /// correct (experiment A2).
    pub fn signature(&self) -> Signature {
        Signature::new(
            self.fields
                .iter()
                .map(Value::type_tag)
                .collect::<Vec<TypeTag>>(),
        )
    }

    /// Approximate payload size in bytes (for message accounting).
    pub fn size_bytes(&self) -> usize {
        self.fields.iter().map(Value::size_bytes).sum::<usize>() + 4
    }
}

impl Index<usize> for Tuple {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.fields[i]
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(fields: Vec<Value>) -> Self {
        Tuple::new(fields)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple::new(iter.into_iter().collect())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, v) in self.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str(")")
    }
}

/// Convenience constructor: `tuple!("count", 42)` builds a two-field tuple.
///
/// Each argument is converted with `Into<Value>`.
#[macro_export]
macro_rules! tuple {
    () => { $crate::Tuple::empty() };
    ($($v:expr),+ $(,)?) => {
        $crate::Tuple::new(vec![$($crate::Value::from($v)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = tuple!("count", 42, 1.5);
        assert_eq!(t.arity(), 3);
        assert_eq!(t[0], Value::Str("count".into()));
        assert_eq!(t.get(1), Some(&Value::Int(42)));
        assert_eq!(t.get(3), None);
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_tuple() {
        let t = Tuple::empty();
        assert_eq!(t.arity(), 0);
        assert!(t.is_empty());
        assert_eq!(t.to_string(), "()");
        assert_eq!(tuple!(), t);
    }

    #[test]
    fn signature_reflects_types() {
        let t = tuple!("a", 1, 2.0, true);
        let sig = t.signature();
        assert_eq!(sig.arity(), 4);
        assert_eq!(
            sig.tags(),
            &[TypeTag::Str, TypeTag::Int, TypeTag::Float, TypeTag::Bool]
        );
    }

    #[test]
    fn same_types_same_signature() {
        assert_eq!(tuple!("a", 1).signature(), tuple!("b", 2).signature());
        assert_ne!(tuple!("a", 1).signature(), tuple!(1, "a").signature());
    }

    #[test]
    fn display() {
        assert_eq!(tuple!("x", 1).to_string(), "(\"x\", 1)");
    }

    #[test]
    fn from_iterator() {
        let t: Tuple = (0..3).map(Value::from).collect();
        assert_eq!(t, tuple!(0, 1, 2));
    }

    #[test]
    fn into_fields_roundtrip() {
        let t = tuple!(1, 2);
        let f = t.clone().into_fields();
        assert_eq!(Tuple::from(f), t);
    }

    #[test]
    fn size_bytes_counts_payload() {
        assert!(tuple!("abc", 1).size_bytes() >= 11);
    }
}

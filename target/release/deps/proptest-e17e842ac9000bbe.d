/root/repo/target/release/deps/proptest-e17e842ac9000bbe.d: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-e17e842ac9000bbe.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

/root/repo/target/release/deps/libproptest-e17e842ac9000bbe.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/strategy.rs vendor/proptest/src/test_runner.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/test_runner.rs:

//! Real TCP transport for the sequencer protocol.
//!
//! One [`TcpMesh`] per process carries all K shard lanes over a single
//! listener and one persistent connection per peer direction:
//!
//! - every process listens on its own address and *dials* every peer, so
//!   a pair of processes exchanges traffic over two simplex connections
//!   (my writer → your reader, your writer → my reader) — no tie-break
//!   needed and a dead connection only silences one direction;
//! - frames are length-prefixed: `[u32 BE body-len][uvarint lane][SeqMsg
//!   wire bytes]`, preceded once per connection by an 8-byte handshake
//!   (`b"FTL1"` + u32 BE sender host id);
//! - writers reconnect with exponential backoff; while a link is down,
//!   sends to that peer are *dropped*, exactly matching `SimNet`'s
//!   fail-silent crash semantics — the sequencer's NACK/rejoin machinery
//!   is what recovers, not the transport;
//! - everything read from a socket is untrusted: body length is capped
//!   before allocation, decode errors (`crate::wire`) count
//!   `ftlinda_frames_rejected_total` and drop the connection.
//!
//! Failure detection is the sequencer's heartbeat mode ([`Heartbeat`]):
//! the mesh never synthesizes `CrashNotice`/`JoinNotice` events, it only
//! delivers `NetEvent::Msg`.

use crate::net::{Heartbeat, HostId, NetEvent};
use crate::sequencer::SeqMsg;
use crate::stats::NetStats;
use crate::wire::{decode_seq_msg, encode_seq_msg, MAX_FRAME_BYTES};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use linda_obs::{Counter, Event, EventSink, Gauge, Histogram, Registry};
use linda_tuple::{get_uvarint, put_uvarint};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// `TcpListener::bind` with `SO_REUSEADDR`, which std never sets: a
/// relaunched member must rebind its well-known port while the previous
/// incarnation's accepted sockets are still draining through
/// `TIME_WAIT` (a SIGKILLed process leaves them to the kernel, and they
/// hold the port for a minute otherwise). The workspace builds offline
/// with no `libc`/`socket2` crate, so this goes through minimal FFI
/// against the libc std already links; non-Unix platforms and IPv6
/// addresses fall back to the plain bind.
pub fn bind_reuse(addr: SocketAddr) -> io::Result<TcpListener> {
    #[cfg(unix)]
    if let SocketAddr::V4(v4) = addr {
        return bind_reuse_v4(v4);
    }
    TcpListener::bind(addr)
}

#[cfg(unix)]
fn bind_reuse_v4(addr: std::net::SocketAddrV4) -> io::Result<TcpListener> {
    use std::os::unix::io::FromRawFd;
    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOCK_CLOEXEC: i32 = 0o2000000;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    /// `struct sockaddr_in`: port and address in network byte order.
    #[repr(C)]
    struct SockaddrIn {
        family: u16,
        port: u16,
        addr: u32,
        zero: [u8; 8],
    }
    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, val: *const u32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const SockaddrIn, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }
    unsafe {
        let fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let fail = |fd: i32| -> io::Error {
            let e = io::Error::last_os_error();
            close(fd);
            e
        };
        let one: u32 = 1;
        if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4) != 0 {
            return Err(fail(fd));
        }
        let sa = SockaddrIn {
            family: AF_INET as u16,
            port: addr.port().to_be(),
            // `octets()` is already network order; a native-endian load
            // of those bytes reproduces it in memory on any endianness.
            addr: u32::from_ne_bytes(addr.ip().octets()),
            zero: [0; 8],
        };
        if bind(fd, &sa, std::mem::size_of::<SockaddrIn>() as u32) != 0 {
            return Err(fail(fd));
        }
        if listen(fd, 128) != 0 {
            return Err(fail(fd));
        }
        Ok(TcpListener::from_raw_fd(fd))
    }
}

const MAGIC: &[u8; 4] = b"FTL1";
/// Outbound frames queued per peer before sends are dropped.
const SEND_QUEUE: usize = 8192;
/// Socket read timeout: how often blocked readers check the stop flag.
const READ_TICK: Duration = Duration::from_millis(250);

/// Configuration for one process's [`TcpMesh`].
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// This process's member id.
    pub me: HostId,
    /// Every member's sequencer address, including our own (index by
    /// id). We listen on `peers[me]` and dial all the others.
    pub peers: Vec<(HostId, SocketAddr)>,
    /// Number of shard lanes multiplexed over the mesh.
    pub lanes: u32,
    /// Heartbeat parameters the sequencer layer should run with; TCP
    /// always uses heartbeat failure detection (there is no oracle).
    pub heartbeat: Heartbeat,
    /// Largest accepted frame body; bigger prefixes drop the connection
    /// before any allocation.
    pub max_frame: usize,
    /// Initial reconnect backoff.
    pub reconnect_min: Duration,
    /// Backoff cap.
    pub reconnect_max: Duration,
}

impl TcpConfig {
    /// Config for member `me` of a localhost cluster at `addrs`.
    pub fn new(me: HostId, addrs: &[SocketAddr], lanes: u32) -> Self {
        TcpConfig {
            me,
            peers: addrs
                .iter()
                .enumerate()
                .map(|(i, a)| (HostId(i as u32), *a))
                .collect(),
            lanes,
            heartbeat: Heartbeat {
                period: Duration::from_millis(100),
                timeout: Duration::from_millis(1500),
            },
            max_frame: MAX_FRAME_BYTES,
            reconnect_min: Duration::from_millis(25),
            reconnect_max: Duration::from_secs(1),
        }
    }
}

struct PeerLink {
    tx: Sender<Arc<Vec<u8>>>,
    connected: AtomicBool,
    sent_bytes: Arc<Counter>,
    recv_bytes: Arc<Counter>,
    reconnects: Arc<Counter>,
    dropped: Arc<Counter>,
    queue_depth: Arc<Gauge>,
}

struct MeshInner {
    cfg: TcpConfig,
    stats: NetStats,
    lanes_tx: Vec<Sender<NetEvent<SeqMsg>>>,
    links: HashMap<HostId, PeerLink>,
    frames_rejected: Arc<Counter>,
    encode_hist: Arc<Histogram>,
    decode_hist: Arc<Histogram>,
    events: Arc<EventSink>,
    stop: AtomicBool,
}

impl MeshInner {
    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    /// Hand a decoded message to its shard lane.
    fn deliver(&self, lane: u32, from: HostId, msg: SeqMsg) {
        if let Some(tx) = self.lanes_tx.get(lane as usize) {
            let _ = tx.send(NetEvent::Msg { from, msg });
        }
    }

    /// Queue an encoded frame for `to`, dropping it (fail-silent) when
    /// the link is down or the queue is full.
    fn send_frame(&self, to: HostId, frame: Arc<Vec<u8>>) {
        let Some(link) = self.links.get(&to) else {
            return;
        };
        if !link.connected.load(Ordering::Relaxed) || link.tx.try_send(frame.clone()).is_err() {
            link.dropped.inc();
            link.queue_depth.set(link.tx.len() as i64);
            return;
        }
        link.queue_depth.set(link.tx.len() as i64);
        self.stats.record_msg(frame.len());
    }

    /// Encode `msg` as a wire frame, timing the serialization.
    fn encode_timed(&self, lane: u32, msg: &SeqMsg) -> Vec<u8> {
        let t0 = Instant::now();
        let frame = encode_frame(lane, msg);
        self.encode_hist.observe(t0.elapsed());
        frame
    }
}

/// Encode `msg` as a complete wire frame for `lane` (length prefix
/// included), ready for `write_all`.
fn encode_frame(lane: u32, msg: &SeqMsg) -> Vec<u8> {
    let mut body = Vec::with_capacity(16);
    put_uvarint(&mut body, u64::from(lane));
    body.extend_from_slice(&encode_seq_msg(msg));
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
    frame.extend_from_slice(&body);
    frame
}

/// The per-process TCP endpoint: listener, per-peer writers, per-lane
/// inboxes. Clone [`TcpLane`]s out of it with [`TcpMesh::lane`].
#[derive(Clone)]
pub struct TcpMesh {
    inner: Arc<MeshInner>,
}

/// One shard lane's view of the mesh: what a `SeqMember` sends through.
#[derive(Clone)]
pub struct TcpLane {
    inner: Arc<MeshInner>,
    lane: u32,
}

impl TcpMesh {
    /// Bind the listener and spawn the accept loop plus one writer per
    /// peer. Returns the mesh and one inbox receiver per lane, in lane
    /// order.
    pub fn start(
        cfg: TcpConfig,
        obs: &Registry,
    ) -> io::Result<(TcpMesh, Vec<Receiver<NetEvent<SeqMsg>>>)> {
        let listen = cfg
            .peers
            .iter()
            .find(|(h, _)| *h == cfg.me)
            .map(|(_, a)| *a)
            .ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidInput, "own id missing from peer list")
            })?;
        let listener = bind_reuse(listen)?;
        listener.set_nonblocking(true)?;

        let sent = obs.counter_family("ftlinda_net_sent_bytes_total", "Bytes written per TCP link");
        let recv = obs.counter_family("ftlinda_net_recv_bytes_total", "Bytes read per TCP link");
        let reconn = obs.counter_family(
            "ftlinda_net_reconnects_total",
            "Re-established outbound connections per TCP link",
        );
        let dropped = obs.counter_family(
            "ftlinda_net_dropped_sends_total",
            "Sends dropped because the link was down or its queue full",
        );
        let frames_rejected = obs.counter(
            "ftlinda_frames_rejected_total",
            "Malformed or oversized wire frames (connection dropped)",
        );
        let queue_depth = obs.gauge_family(
            "ftlinda_net_queue_depth",
            "Outbound frames queued per TCP link at the last send",
        );
        let encode_hist = obs.histogram(
            "ftlinda_frame_encode_seconds",
            "Wire frame serialization latency",
        );
        let decode_hist = obs.histogram(
            "ftlinda_frame_decode_seconds",
            "Wire frame deserialization latency",
        );
        let events = obs.events_handle();

        let mut lanes_tx = Vec::new();
        let mut lanes_rx = Vec::new();
        for _ in 0..cfg.lanes.max(1) {
            let (tx, rx) = unbounded();
            lanes_tx.push(tx);
            lanes_rx.push(rx);
        }

        let mut links = HashMap::new();
        let mut writers = Vec::new();
        for (peer, addr) in cfg.peers.iter().filter(|(h, _)| *h != cfg.me) {
            let label = peer.0.to_string();
            let labels: &[(&str, &str)] = &[("peer", &label)];
            let (tx, rx) = bounded(SEND_QUEUE);
            links.insert(
                *peer,
                PeerLink {
                    tx,
                    connected: AtomicBool::new(false),
                    sent_bytes: sent.with(labels),
                    recv_bytes: recv.with(labels),
                    reconnects: reconn.with(labels),
                    dropped: dropped.with(labels),
                    queue_depth: queue_depth.with(labels),
                },
            );
            writers.push((*peer, *addr, rx));
        }

        let inner = Arc::new(MeshInner {
            cfg,
            stats: NetStats::default(),
            lanes_tx,
            links,
            frames_rejected,
            encode_hist,
            decode_hist,
            events,
            stop: AtomicBool::new(false),
        });

        for (peer, addr, rx) in writers {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name(format!("tcp-writer-{}", peer.0))
                .spawn(move || writer_loop(&inner, peer, addr, &rx))?;
        }
        {
            let inner = inner.clone();
            std::thread::Builder::new()
                .name("tcp-accept".into())
                .spawn(move || accept_loop(&inner, &listener))?;
        }
        Ok((
            TcpMesh {
                inner: inner.clone(),
            },
            lanes_rx,
        ))
    }

    /// The sending handle for shard `lane`.
    pub fn lane(&self, lane: u32) -> TcpLane {
        TcpLane {
            inner: self.inner.clone(),
            lane,
        }
    }

    /// Stop all mesh threads and drop every link.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::Relaxed);
    }

    /// This process plus every peer with a currently-established
    /// outbound link, sorted by id. The protocol's own live set (from
    /// heartbeats and ordered Fail/Join records) is authoritative; this
    /// is the transport-level view for health endpoints.
    pub fn live_hosts(&self) -> Vec<HostId> {
        let mut out = vec![self.inner.cfg.me];
        for (h, link) in &self.inner.links {
            if link.connected.load(Ordering::Relaxed) {
                out.push(*h);
            }
        }
        out.sort();
        out
    }

    /// Message/byte counters for enqueued sends.
    pub fn stats(&self) -> &NetStats {
        &self.inner.stats
    }

    /// Heartbeat parameters the sequencer layer must run with.
    pub fn heartbeat(&self) -> Heartbeat {
        self.inner.cfg.heartbeat
    }

    /// This process's member id.
    pub fn me(&self) -> HostId {
        self.inner.cfg.me
    }

    /// Every member id in the mesh, sorted.
    pub fn universe(&self) -> Vec<HostId> {
        let mut u: Vec<HostId> = self.inner.cfg.peers.iter().map(|(h, _)| *h).collect();
        u.sort();
        u
    }
}

impl TcpLane {
    /// Send `msg` to `to` over this lane (loopback for `to == me`).
    pub fn send(&self, to: HostId, msg: SeqMsg) {
        if to == self.inner.cfg.me {
            self.inner.deliver(self.lane, to, msg);
            return;
        }
        let frame = Arc::new(self.inner.encode_timed(self.lane, &msg));
        self.inner.send_frame(to, frame);
    }

    /// Send `msg` to every host in `to`, encoding it once.
    pub fn multicast(&self, to: &[HostId], msg: SeqMsg) {
        let me = self.inner.cfg.me;
        let frame = Arc::new(self.inner.encode_timed(self.lane, &msg));
        for h in to {
            if *h == me {
                self.inner.deliver(self.lane, me, msg.clone());
            } else {
                self.inner.send_frame(*h, frame.clone());
            }
        }
    }

    /// Heartbeat parameters for this lane's sequencer.
    pub fn heartbeat(&self) -> Heartbeat {
        self.inner.cfg.heartbeat
    }

    /// Transport-level live view (see [`TcpMesh::live_hosts`]).
    pub fn live_hosts(&self) -> Vec<HostId> {
        TcpMesh {
            inner: self.inner.clone(),
        }
        .live_hosts()
    }

    /// Shared mesh send counters.
    pub fn stats(&self) -> &NetStats {
        &self.inner.stats
    }
}

/// Dial-and-pump loop for one outbound link. Owns the reconnect state
/// machine: Disconnected → (backoff) → Connected → on any write error
/// back to Disconnected with the backoff reset to `reconnect_min`.
fn writer_loop(
    inner: &Arc<MeshInner>,
    peer: HostId,
    addr: SocketAddr,
    rx: &Receiver<Arc<Vec<u8>>>,
) {
    let link = &inner.links[&peer];
    let mut backoff = inner.cfg.reconnect_min;
    let mut ever_connected = false;
    // Dials since the link was last up; reported in the `link_up` event
    // so a reconnect storm's length is visible after the fact.
    let mut dial_attempts: u64 = 0;
    while !inner.stopped() {
        dial_attempts += 1;
        let mut stream = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(_) => {
                std::thread::sleep(backoff.min(inner.cfg.reconnect_max));
                backoff = (backoff * 2).min(inner.cfg.reconnect_max);
                continue;
            }
        };
        let _ = stream.set_nodelay(true);
        let mut hello = Vec::with_capacity(8);
        hello.extend_from_slice(MAGIC);
        hello.extend_from_slice(&inner.cfg.me.0.to_be_bytes());
        if stream.write_all(&hello).is_err() {
            std::thread::sleep(backoff.min(inner.cfg.reconnect_max));
            backoff = (backoff * 2).min(inner.cfg.reconnect_max);
            continue;
        }
        if ever_connected {
            link.reconnects.inc();
        }
        ever_connected = true;
        backoff = inner.cfg.reconnect_min;
        inner.events.emit(Event::new(
            "link_up",
            vec![
                ("peer".into(), peer.0.to_string()),
                ("dial_attempts".into(), dial_attempts.to_string()),
            ],
        ));
        dial_attempts = 0;
        link.connected.store(true, Ordering::Relaxed);
        // Drain stale frames queued while we were down: they were
        // logically dropped already.
        while rx.try_recv().is_ok() {}
        loop {
            if inner.stopped() {
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            match rx.recv_timeout(Duration::from_millis(100)) {
                Ok(frame) => {
                    if stream.write_all(&frame).is_err() {
                        break;
                    }
                    link.sent_bytes.add(frame.len() as u64);
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
            }
        }
        link.connected.store(false, Ordering::Relaxed);
        inner.events.emit(Event::new(
            "link_down",
            vec![("peer".into(), peer.0.to_string())],
        ));
    }
}

fn accept_loop(inner: &Arc<MeshInner>, listener: &TcpListener) {
    while !inner.stopped() {
        match listener.accept() {
            Ok((stream, _)) => {
                let inner = inner.clone();
                let r = std::thread::Builder::new()
                    .name("tcp-reader".into())
                    .spawn(move || reader_loop(&inner, stream));
                // A spawn failure here means resource exhaustion; drop
                // the connection and keep serving (degrade, don't abort).
                drop(r);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(100)),
        }
    }
}

fn read_exact_ticked(inner: &MeshInner, stream: &mut TcpStream, buf: &mut [u8]) -> io::Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        if inner.stopped() {
            return Err(io::Error::new(io::ErrorKind::Interrupted, "mesh stopped"));
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Inbound pump for one accepted connection: validate the handshake,
/// then frame-decode until error or EOF. All input is untrusted.
fn reader_loop(inner: &Arc<MeshInner>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let mut hello = [0u8; 8];
    if read_exact_ticked(inner, &mut stream, &mut hello).is_err() {
        return;
    }
    if &hello[..4] != MAGIC {
        inner.frames_rejected.inc();
        return;
    }
    let from = HostId(u32::from_be_bytes([hello[4], hello[5], hello[6], hello[7]]));
    let Some(link) = inner.links.get(&from) else {
        // Unknown sender id: not part of this cluster's universe.
        inner.frames_rejected.inc();
        return;
    };
    let mut len_buf = [0u8; 4];
    loop {
        if read_exact_ticked(inner, &mut stream, &mut len_buf).is_err() {
            return;
        }
        let len = u32::from_be_bytes(len_buf) as usize;
        // Cap BEFORE allocating: a hostile length prefix must not drive
        // a multi-gigabyte reservation.
        if len == 0 || len > inner.cfg.max_frame {
            inner.frames_rejected.inc();
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        let mut body = vec![0u8; len];
        if read_exact_ticked(inner, &mut stream, &mut body).is_err() {
            return;
        }
        link.recv_bytes.add(4 + len as u64);
        let mut slice = body.as_slice();
        let lane = match get_uvarint(&mut slice) {
            Ok(l) if l < u64::from(inner.cfg.lanes.max(1)) => l as u32,
            _ => {
                inner.frames_rejected.inc();
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        };
        let t0 = Instant::now();
        let decoded = decode_seq_msg(slice);
        inner.decode_hist.observe(t0.elapsed());
        match decoded {
            Ok(msg) => inner.deliver(lane, from, msg),
            Err(_) => {
                inner.frames_rejected.inc();
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn free_addrs(n: usize) -> Vec<SocketAddr> {
        (0..n)
            .map(|_| {
                let l = TcpListener::bind("127.0.0.1:0").unwrap();
                l.local_addr().unwrap()
            })
            .collect()
    }

    type MeshPair = (
        TcpMesh,
        Vec<Receiver<NetEvent<SeqMsg>>>,
        TcpMesh,
        Vec<Receiver<NetEvent<SeqMsg>>>,
    );

    fn start_pair() -> MeshPair {
        let addrs = free_addrs(2);
        let obs0 = Registry::default();
        let obs1 = Registry::default();
        let (m0, rx0) = TcpMesh::start(TcpConfig::new(HostId(0), &addrs, 2), &obs0).unwrap();
        let (m1, rx1) = TcpMesh::start(TcpConfig::new(HostId(1), &addrs, 2), &obs1).unwrap();
        (m0, rx0, m1, rx1)
    }

    #[test]
    fn frames_cross_processes_er_sockets() {
        let (m0, _rx0, m1, rx1) = start_pair();
        let lane = m0.lane(1);
        let msg = SeqMsg::Submit {
            local: 3,
            payload: Bytes::from_static(b"over tcp"),
        };
        // Dial-up takes a few backoff rounds; retry until delivered.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            lane.send(HostId(1), msg.clone());
            match rx1[1].recv_timeout(Duration::from_millis(100)) {
                Ok(NetEvent::Msg { from, msg: got }) => {
                    assert_eq!(from, HostId(0));
                    assert_eq!(got, msg);
                    break;
                }
                _ => assert!(std::time::Instant::now() < deadline, "frame never arrived"),
            }
        }
        m0.shutdown();
        m1.shutdown();
    }

    #[test]
    fn loopback_skips_the_socket() {
        let addrs = free_addrs(1);
        let obs = Registry::default();
        let (m, rx) = TcpMesh::start(TcpConfig::new(HostId(0), &addrs, 1), &obs).unwrap();
        let ping = SeqMsg::Ping {
            sent_us: 1,
            echo_us: 0,
            held_us: 0,
        };
        m.lane(0).send(HostId(0), ping.clone());
        match rx[0].recv_timeout(Duration::from_secs(1)).unwrap() {
            NetEvent::Msg { from, msg } => {
                assert_eq!(from, HostId(0));
                assert_eq!(msg, ping);
            }
            other => panic!("unexpected event {other:?}"),
        }
        m.shutdown();
    }

    #[test]
    fn oversized_prefix_rejected_and_counted() {
        let addrs = free_addrs(1);
        let obs = Registry::default();
        let (m, rx) = TcpMesh::start(TcpConfig::new(HostId(0), &addrs, 1), &obs).unwrap();
        // Raw socket speaking a hostile length prefix after a valid hello.
        let mut s = TcpStream::connect(addrs[0]).unwrap();
        let mut hello = Vec::new();
        hello.extend_from_slice(MAGIC);
        hello.extend_from_slice(&0u32.to_be_bytes()); // claims to be host 0... unknown link
                                                      // Host 0 is "me" on the mesh, so it has no link entry: rejected.
        s.write_all(&hello).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while obs.snapshot().counter("ftlinda_frames_rejected_total") != Some(1) {
            assert!(
                std::time::Instant::now() < deadline,
                "rejection not counted"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(rx[0].try_recv().is_err());
        m.shutdown();
    }

    #[test]
    fn malformed_frame_drops_connection_without_panic() {
        let addrs = free_addrs(2);
        let obs = Registry::default();
        let (m, rx) = TcpMesh::start(TcpConfig::new(HostId(0), &addrs, 1), &obs).unwrap();
        let mut s = TcpStream::connect(addrs[0]).unwrap();
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&1u32.to_be_bytes()); // valid peer id 1
                                                    // A frame whose body is garbage.
        buf.extend_from_slice(&3u32.to_be_bytes());
        buf.extend_from_slice(&[0x00, 0xee, 0xee]); // lane 0, bad tag
        s.write_all(&buf).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while obs.snapshot().counter("ftlinda_frames_rejected_total") != Some(1) {
            assert!(
                std::time::Instant::now() < deadline,
                "rejection not counted"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        // Connection was dropped: the peer observes EOF on read.
        let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
        let mut probe = [0u8; 1];
        assert_eq!(s.read(&mut probe).unwrap_or(0), 0, "server must close");
        assert!(rx[0].try_recv().is_err());
        m.shutdown();
    }
}

//! Property-based equivalence of sharded and unsharded deployments:
//! for any interleaving of single-shard and cross-shard AGSs — including
//! a crash + checkpoint/restore cycle — a K=2 cluster and a K=1 cluster
//! fed the same program end in the same observable state: identical
//! per-space canonical digests, identical AGS outcomes, and identical
//! withdraw order within every signature bucket.
//!
//! Programs are materialized against a simple model (per-head tuple
//! counts) so no generated guard can block forever; the same
//! materialized program is then replayed on both clusters.

use ftlinda::{Ags, Cluster, FtError, HostId, MatchField as MF, Operand, Runtime, TsId, TypeTag};
use linda_tuple::{pat, tuple, Tuple, Value};
use proptest::prelude::*;
use std::collections::HashMap;
use std::time::Duration;

const INT_HEADS: [&str; 2] = ["n", "m"];
const STR_HEADS: [&str; 2] = ["s", "t"];

/// One raw generated step; materialization may drop steps whose guard
/// the model says could block.
#[derive(Debug, Clone)]
enum RawOp {
    /// `out(ts, head, v)` — `[Str, Int]`, single-shard.
    OutInt { space: usize, head: usize, v: i64 },
    /// `out(ts, head, "vK")` — `[Str, Str]`, the other shard of K=2.
    OutStr { space: usize, head: usize, v: u8 },
    /// Non-blocking withdraw of the oldest `[Str, Int]` match.
    InpInt { space: usize, head: usize },
    /// Non-blocking withdraw of the oldest `[Str, Str]` match.
    InpStr { space: usize, head: usize },
    /// Cross-shard: `⟨ in(head, ?int) ⇒ out("s", "moved") ⟩`; kept only
    /// when the model guarantees the guard matches immediately.
    CrossMove { space: usize, head: usize },
    /// Cross-shard counter bump plus a `[Str, Str]` tick — the guard
    /// tuple (`"ctr"`) always exists, so never blocks.
    CrossIncr { space: usize },
    /// Deterministic body failure spanning both signatures: the AGS
    /// rolls back on every shard of both deployments.
    CrossFail { space: usize },
}

fn arb_op() -> impl Strategy<Value = RawOp> {
    prop_oneof![
        3 => (0usize..2, 0usize..2, -5i64..6).prop_map(|(space, head, v)| RawOp::OutInt { space, head, v }),
        3 => (0usize..2, 0usize..2, 0u8..4).prop_map(|(space, head, v)| RawOp::OutStr { space, head, v }),
        2 => (0usize..2, 0usize..2).prop_map(|(space, head)| RawOp::InpInt { space, head }),
        2 => (0usize..2, 0usize..2).prop_map(|(space, head)| RawOp::InpStr { space, head }),
        2 => (0usize..2, 0usize..2).prop_map(|(space, head)| RawOp::CrossMove { space, head }),
        2 => (0usize..2).prop_map(|space| RawOp::CrossIncr { space }),
        1 => (0usize..2).prop_map(|space| RawOp::CrossFail { space }),
    ]
}

/// Drop `CrossMove` steps whose guard could block (no `[head, int]`
/// tuple in the model at that point); track the model through every
/// other effect so later steps see the updated counts.
fn materialize(raw: &[RawOp]) -> Vec<RawOp> {
    let mut counts: HashMap<(usize, &'static str, usize), i64> = HashMap::new();
    let mut program = Vec::with_capacity(raw.len());
    for op in raw {
        match *op {
            RawOp::OutInt { space, head, .. } => {
                *counts.entry((space, "i", head)).or_default() += 1;
            }
            RawOp::OutStr { space, head, .. } => {
                *counts.entry((space, "s", head)).or_default() += 1;
            }
            RawOp::InpInt { space, head } => {
                let c = counts.entry((space, "i", head)).or_default();
                *c = (*c - 1).max(0);
            }
            RawOp::InpStr { space, head } => {
                let c = counts.entry((space, "s", head)).or_default();
                *c = (*c - 1).max(0);
            }
            RawOp::CrossMove { space, head } => {
                let c = counts.entry((space, "i", head)).or_default();
                if *c == 0 {
                    continue; // would block — skip in both runs
                }
                *c -= 1;
                *counts.entry((space, "s", 0)).or_default() += 1;
            }
            RawOp::CrossIncr { space } => {
                *counts.entry((space, "s", 1)).or_default() += 1;
            }
            RawOp::CrossFail { .. } => {} // rolls back: no model effect
        }
        program.push(op.clone());
    }
    program
}

/// Observable result of one step, compared across deployments.
#[derive(Debug, Clone, PartialEq)]
enum StepResult {
    Tuple(Option<Tuple>),
    Bindings(Vec<Value>),
    Err(FtError),
}

fn cross_move_ags(ts: TsId, head: usize) -> Ags {
    Ags::builder()
        .guard_in(
            ts,
            vec![MF::actual(INT_HEADS[head]), MF::bind(TypeTag::Int)],
        )
        .out(ts, vec![Operand::cst("s"), Operand::cst("moved")])
        .build()
        .unwrap()
}

fn cross_incr_ags(ts: TsId) -> Ags {
    Ags::builder()
        .guard_in(ts, vec![MF::actual("ctr"), MF::bind(TypeTag::Int)])
        .out(ts, vec![Operand::cst("ctr"), Operand::formal(0).add(1)])
        .out(ts, vec![Operand::cst("t"), Operand::cst("tick")])
        .build()
        .unwrap()
}

fn cross_fail_ags(ts: TsId) -> Ags {
    Ags::builder()
        .guard_true()
        .out(ts, vec![Operand::cst("s"), Operand::cst("ghost")])
        .in_(ts, vec![MF::actual("n"), MF::actual(99_999i64)])
        .build()
        .unwrap()
}

fn run_step(rt: &Runtime, spaces: &[TsId], op: &RawOp) -> StepResult {
    match *op {
        RawOp::OutInt { space, head, v } => {
            rt.out(spaces[space], tuple!(INT_HEADS[head], v)).unwrap();
            StepResult::Tuple(None)
        }
        RawOp::OutStr { space, head, v } => {
            rt.out(spaces[space], tuple!(STR_HEADS[head], format!("v{v}")))
                .unwrap();
            StepResult::Tuple(None)
        }
        RawOp::InpInt { space, head } => {
            StepResult::Tuple(rt.inp(spaces[space], &pat!(INT_HEADS[head], ?int)).unwrap())
        }
        RawOp::InpStr { space, head } => {
            StepResult::Tuple(rt.inp(spaces[space], &pat!(STR_HEADS[head], ?str)).unwrap())
        }
        RawOp::CrossMove { space, head } => {
            match rt.execute(&cross_move_ags(spaces[space], head)) {
                Ok(out) => StepResult::Bindings(out.bindings),
                Err(e) => StepResult::Err(e),
            }
        }
        RawOp::CrossIncr { space } => match rt.execute(&cross_incr_ags(spaces[space])) {
            Ok(out) => StepResult::Bindings(out.bindings),
            Err(e) => StepResult::Err(e),
        },
        RawOp::CrossFail { space } => match rt.execute(&cross_fail_ags(spaces[space])) {
            Ok(out) => StepResult::Bindings(out.bindings),
            Err(e) => StepResult::Err(e),
        },
    }
}

struct Deployment {
    cluster: Cluster,
    rts: Vec<Runtime>,
    spaces: Vec<TsId>,
    restarted: Option<Runtime>,
}

impl Deployment {
    fn launch(shards: u32) -> Deployment {
        let (cluster, rts) = Cluster::builder()
            .hosts(3)
            .shards(shards)
            .checkpoint_every(8)
            .build();
        let spaces = vec![
            rts[0].create_stable_ts("alpha").unwrap(),
            rts[0].create_stable_ts("beta").unwrap(),
        ];
        for &ts in &spaces {
            rts[0].out(ts, tuple!("ctr", 0)).unwrap();
        }
        Deployment {
            cluster,
            rts,
            spaces,
            restarted: None,
        }
    }

    /// Crash host 2, absorb the deterministic failure tuples (so their
    /// transient bucket positions cannot skew the digest comparison),
    /// and restart — exercising per-shard log replay / checkpoint
    /// restore on the way back.
    fn crash_restart_cycle(&mut self) {
        self.cluster.crash(HostId(2));
        for &ts in &self.spaces {
            let f = self.rts[0].in_(ts, &pat!("failure", 2)).unwrap();
            assert_eq!(f, tuple!("failure", 2));
        }
        self.restarted = Some(self.cluster.restart(HostId(2)));
    }

    /// Drain every signature bucket via head-anchored `inp`, recording
    /// the withdraw order.
    fn drain(&self) -> Vec<(usize, String, Tuple)> {
        let mut order = Vec::new();
        for (i, &ts) in self.spaces.iter().enumerate() {
            for head in INT_HEADS {
                while let Some(t) = self.rts[0].inp(ts, &pat!(head, ?int)).unwrap() {
                    order.push((i, head.to_string(), t));
                }
            }
            for head in STR_HEADS {
                while let Some(t) = self.rts[0].inp(ts, &pat!(head, ?str)).unwrap() {
                    order.push((i, head.to_string(), t));
                }
            }
        }
        order
    }
}

proptest! {
    // Each case runs two live clusters (one of them doubly-sharded), so
    // keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The equivalence property: same program, same observable history,
    /// K=2 vs K=1 — through a crash + restore in the middle.
    #[test]
    fn sharded_equals_unsharded(
        raw in proptest::collection::vec(arb_op(), 1..14),
        cut_frac in 0.0f64..1.0,
    ) {
        let program = materialize(&raw);
        let cut = ((program.len() as f64) * cut_frac) as usize;

        let mut sharded = Deployment::launch(2);
        let mut flat = Deployment::launch(1);
        prop_assert_eq!(sharded.rts[0].shard_count(), 2);
        prop_assert_eq!(flat.rts[0].shard_count(), 1);
        prop_assert_eq!(&sharded.spaces, &flat.spaces);

        let mut results_sharded = Vec::new();
        let mut results_flat = Vec::new();
        for (i, op) in program.iter().enumerate() {
            if i == cut {
                sharded.crash_restart_cycle();
                flat.crash_restart_cycle();
            }
            results_sharded.push(run_step(&sharded.rts[0], &sharded.spaces, op));
            results_flat.push(run_step(&flat.rts[0], &flat.spaces, op));
        }
        if cut >= program.len() {
            sharded.crash_restart_cycle();
            flat.crash_restart_cycle();
        }

        // Step-by-step observable equality.
        prop_assert_eq!(&results_sharded, &results_flat);

        // The restarted replica converges shard-by-shard to the state
        // the survivors hold.
        for dep in [&sharded, &flat] {
            let revived = dep.restarted.as_ref().unwrap();
            for shard in 0..dep.rts[0].shard_count() {
                let seq = dep.rts[0].applied_seqs()[shard];
                prop_assert!(
                    revived.wait_applied_shard(shard, seq, Duration::from_secs(10)),
                    "shard {shard}: restarted host never caught up"
                );
            }
            for &ts in &dep.spaces {
                prop_assert_eq!(
                    revived.canonical_space_digest(ts),
                    dep.rts[0].canonical_space_digest(ts)
                );
            }
        }

        // Canonical per-space digests agree across deployments…
        for (&a, &b) in sharded.spaces.iter().zip(&flat.spaces) {
            prop_assert_eq!(
                sharded.rts[0].canonical_space_digest(a),
                flat.rts[0].canonical_space_digest(b),
                "space {} digest diverged between K=2 and K=1", a.0
            );
        }
        // …the counter agrees…
        for (&a, &b) in sharded.spaces.iter().zip(&flat.spaces) {
            prop_assert_eq!(
                sharded.rts[0].rd(a, &pat!("ctr", ?int)).unwrap(),
                flat.rts[0].rd(b, &pat!("ctr", ?int)).unwrap()
            );
        }
        // …and so does the withdraw order of every signature bucket.
        prop_assert_eq!(sharded.drain(), flat.drain());

        sharded.cluster.shutdown();
        flat.cluster.shutdown();
    }
}

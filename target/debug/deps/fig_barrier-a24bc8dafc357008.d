/root/repo/target/debug/deps/fig_barrier-a24bc8dafc357008.d: crates/bench/benches/fig_barrier.rs

/root/repo/target/debug/deps/fig_barrier-a24bc8dafc357008: crates/bench/benches/fig_barrier.rs

crates/bench/benches/fig_barrier.rs:

/root/repo/target/debug/deps/e2e_ags_latency-404fda8ccb7f0a62.d: crates/bench/benches/e2e_ags_latency.rs Cargo.toml

/root/repo/target/debug/deps/libe2e_ags_latency-404fda8ccb7f0a62.rmeta: crates/bench/benches/e2e_ags_latency.rs Cargo.toml

crates/bench/benches/e2e_ags_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/linda_tuple-6e4b4abf4986a704.d: crates/tuple/src/lib.rs crates/tuple/src/codec.rs crates/tuple/src/pattern.rs crates/tuple/src/signature.rs crates/tuple/src/tuple.rs crates/tuple/src/value.rs Cargo.toml

/root/repo/target/debug/deps/liblinda_tuple-6e4b4abf4986a704.rmeta: crates/tuple/src/lib.rs crates/tuple/src/codec.rs crates/tuple/src/pattern.rs crates/tuple/src/signature.rs crates/tuple/src/tuple.rs crates/tuple/src/value.rs Cargo.toml

crates/tuple/src/lib.rs:
crates/tuple/src/codec.rs:
crates/tuple/src/pattern.rs:
crates/tuple/src/signature.rs:
crates/tuple/src/tuple.rs:
crates/tuple/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! # linda-space
//!
//! Classic Linda as a Rust library: a concurrent, in-process tuple space
//! with blocking `in`/`rd`, non-blocking `inp`/`rdp`, and `eval` (active
//! tuples). This is the programming model of the original Linda papers;
//! in the FT-Linda reproduction it doubles as the *scratch* (volatile,
//! host-local) tuple space and as the per-replica backing store behind
//! stable tuple spaces.
//!
//! ```
//! use linda_space::LocalSpace;
//! use linda_tuple::{tuple, pat};
//!
//! let ts = LocalSpace::new();
//! ts.out(tuple!("count", 0));
//! let t = ts.in_(&pat!("count", ?int)).unwrap();
//! ts.out(tuple!("count", t[1].as_int().unwrap() + 1));
//! assert_eq!(ts.rd(&pat!("count", ?int)).unwrap(), tuple!("count", 1));
//! ```

#![warn(missing_docs)]

mod space;
mod store;

pub use space::{EvalField, EvalHandle, LocalSpace, SpaceClosed};
pub use store::{
    AdaptiveStore, IndexReport, IndexedStore, LinearStore, MatchStats, SignatureOccupancy, Store,
    StoreConfig,
};

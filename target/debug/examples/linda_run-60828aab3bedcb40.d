/root/repo/target/debug/examples/linda_run-60828aab3bedcb40.d: examples/linda_run.rs

/root/repo/target/debug/examples/linda_run-60828aab3bedcb40: examples/linda_run.rs

examples/linda_run.rs:

//! Tuple-space operations as they appear inside an AGS.

use crate::expr::{EvalCtx, EvalError, Operand};
use linda_tuple::{PatField, Pattern, TypeTag, Value};
use std::fmt;

/// Identifier of a *stable* tuple space, assigned at creation time by the
/// runtime and agreed on by all replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TsId(pub u32);

impl fmt::Display for TsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ts#{}", self.0)
    }
}

/// Identifier of a *scratch* (volatile, host-local) tuple space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ScratchId(pub u32);

impl fmt::Display for ScratchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scratch#{}", self.0)
    }
}

/// A tuple space referenced by an AGS operation.
///
/// Guards and body `in`/`rd` must target stable spaces (their outcome
/// must be identical at every replica); `out` and the destination of
/// `move`/`copy` may also target a scratch space, in which case only the
/// submitting host materializes the tuples locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpaceRef {
    /// A replicated stable tuple space.
    Stable(TsId),
    /// A volatile host-local space of the submitting process.
    Scratch(ScratchId),
}

impl SpaceRef {
    /// Whether this refers to a stable space.
    pub fn is_stable(&self) -> bool {
        matches!(self, SpaceRef::Stable(_))
    }
}

impl From<TsId> for SpaceRef {
    fn from(id: TsId) -> Self {
        SpaceRef::Stable(id)
    }
}

impl From<ScratchId> for SpaceRef {
    fn from(id: ScratchId) -> Self {
        SpaceRef::Scratch(id)
    }
}

impl fmt::Display for SpaceRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpaceRef::Stable(id) => write!(f, "{id}"),
            SpaceRef::Scratch(id) => write!(f, "{id}"),
        }
    }
}

/// One field of an AGS match template (the argument of `in`, `rd`,
/// `move`, `copy`, or a guard).
#[derive(Debug, Clone, PartialEq)]
pub enum MatchField {
    /// A typed formal: binds the tuple's field to the next formal index.
    Bind(TypeTag),
    /// A computed actual: evaluated against current bindings, must equal
    /// the tuple's field.
    Expr(Operand),
}

impl MatchField {
    /// Formal constructor.
    pub fn bind(t: TypeTag) -> MatchField {
        MatchField::Bind(t)
    }

    /// Actual constructor from anything convertible to a [`Value`].
    pub fn actual<V: Into<Value>>(v: V) -> MatchField {
        MatchField::Expr(Operand::Const(v.into()))
    }

    /// Whether this field binds a formal.
    pub fn is_bind(&self) -> bool {
        matches!(self, MatchField::Bind(_))
    }
}

impl From<Operand> for MatchField {
    fn from(o: Operand) -> Self {
        MatchField::Expr(o)
    }
}

/// Resolve a match template into a concrete [`Pattern`] by evaluating its
/// expression fields against the bindings accumulated so far.
pub fn resolve_pattern(fields: &[MatchField], ctx: &EvalCtx<'_>) -> Result<Pattern, EvalError> {
    let mut out = Vec::with_capacity(fields.len());
    for f in fields {
        out.push(match f {
            MatchField::Bind(t) => PatField::Formal(*t),
            MatchField::Expr(op) => PatField::Actual(op.eval(ctx)?),
        });
    }
    Ok(Pattern::new(out))
}

/// Resolve an `out` template into a concrete tuple.
pub fn resolve_template(template: &[Operand], ctx: &EvalCtx<'_>) -> Result<Vec<Value>, EvalError> {
    template.iter().map(|op| op.eval(ctx)).collect()
}

/// An operation in an AGS body. Ordered; later operations see the formals
/// bound by earlier `In`/`Rd` operations.
#[derive(Debug, Clone, PartialEq)]
pub enum BodyOp {
    /// Deposit a tuple built from `template`.
    Out {
        /// Target space.
        ts: SpaceRef,
        /// Field expressions.
        template: Vec<Operand>,
    },
    /// Withdraw the oldest matching tuple, binding its formals. The AGS
    /// aborts (with rollback) if no tuple matches at execution time.
    In {
        /// Source space (must be stable).
        ts: SpaceRef,
        /// Match template.
        pattern: Vec<MatchField>,
    },
    /// Read the oldest matching tuple, binding its formals; aborts if no
    /// match.
    Rd {
        /// Source space (must be stable).
        ts: SpaceRef,
        /// Match template.
        pattern: Vec<MatchField>,
    },
    /// Atomically transfer **all** tuples matching `pattern` from one
    /// space to another (paper §3: used by recovery code to return
    /// in-progress subtasks to the bag). Binds nothing; `Bind` fields act
    /// as typed wildcards.
    Move {
        /// Source space (must be stable).
        from: SpaceRef,
        /// Destination space.
        to: SpaceRef,
        /// Match template (wildcards allowed).
        pattern: Vec<MatchField>,
    },
    /// Like `Move` but copies, leaving the source intact.
    Copy {
        /// Source space (must be stable).
        from: SpaceRef,
        /// Destination space.
        to: SpaceRef,
        /// Match template (wildcards allowed).
        pattern: Vec<MatchField>,
    },
}

impl BodyOp {
    /// Number of new formals this op binds.
    pub fn binds(&self) -> usize {
        match self {
            BodyOp::In { pattern, .. } | BodyOp::Rd { pattern, .. } => {
                pattern.iter().filter(|f| f.is_bind()).count()
            }
            _ => 0,
        }
    }

    /// Types of the formals this op binds, in order.
    pub fn bind_types(&self) -> Vec<TypeTag> {
        match self {
            BodyOp::In { pattern, .. } | BodyOp::Rd { pattern, .. } => pattern
                .iter()
                .filter_map(|f| match f {
                    MatchField::Bind(t) => Some(*t),
                    MatchField::Expr(_) => None,
                })
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Short mnemonic for display and stats.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            BodyOp::Out { .. } => "out",
            BodyOp::In { .. } => "in",
            BodyOp::Rd { .. } => "rd",
            BodyOp::Move { .. } => "move",
            BodyOp::Copy { .. } => "copy",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linda_tuple::tuple;

    fn ctx<'a>(b: &'a [Value]) -> EvalCtx<'a> {
        EvalCtx {
            bindings: b,
            self_host: 0,
            request_seq: 0,
        }
    }

    #[test]
    fn space_ref_conversions() {
        let s: SpaceRef = TsId(1).into();
        assert!(s.is_stable());
        let s2: SpaceRef = ScratchId(2).into();
        assert!(!s2.is_stable());
        assert_eq!(s.to_string(), "ts#1");
        assert_eq!(s2.to_string(), "scratch#2");
    }

    #[test]
    fn resolve_pattern_mixes_binds_and_exprs() {
        let b = [Value::Int(5)];
        let fields = [
            MatchField::actual("job"),
            MatchField::Expr(Operand::formal(0).add(1)),
            MatchField::bind(TypeTag::Str),
        ];
        let p = resolve_pattern(&fields, &ctx(&b)).unwrap();
        assert!(p.matches(&tuple!("job", 6, "payload")));
        assert!(!p.matches(&tuple!("job", 5, "payload")));
        assert_eq!(p.formal_count(), 1);
    }

    #[test]
    fn resolve_pattern_propagates_errors() {
        let fields = [MatchField::Expr(Operand::formal(3))];
        assert_eq!(
            resolve_pattern(&fields, &ctx(&[])),
            Err(EvalError::UnboundFormal(3))
        );
    }

    #[test]
    fn resolve_template_builds_values() {
        let b = [Value::Int(2)];
        let t = [Operand::cst("r"), Operand::formal(0).mul(10)];
        assert_eq!(
            resolve_template(&t, &ctx(&b)).unwrap(),
            vec![Value::Str("r".into()), Value::Int(20)]
        );
    }

    #[test]
    fn body_op_binds_and_types() {
        let op = BodyOp::In {
            ts: TsId(0).into(),
            pattern: vec![
                MatchField::actual("x"),
                MatchField::bind(TypeTag::Int),
                MatchField::bind(TypeTag::Float),
            ],
        };
        assert_eq!(op.binds(), 2);
        assert_eq!(op.bind_types(), vec![TypeTag::Int, TypeTag::Float]);
        assert_eq!(op.mnemonic(), "in");

        let out = BodyOp::Out {
            ts: TsId(0).into(),
            template: vec![Operand::cst(1)],
        };
        assert_eq!(out.binds(), 0);
        assert!(out.bind_types().is_empty());

        let mv = BodyOp::Move {
            from: TsId(0).into(),
            to: TsId(1).into(),
            pattern: vec![MatchField::bind(TypeTag::Int)],
        };
        // Move wildcards are not bindings.
        assert_eq!(mv.binds(), 0);
        assert_eq!(mv.mnemonic(), "move");
    }
}

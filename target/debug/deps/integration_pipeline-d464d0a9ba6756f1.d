/root/repo/target/debug/deps/integration_pipeline-d464d0a9ba6756f1.d: tests/integration_pipeline.rs

/root/repo/target/debug/deps/integration_pipeline-d464d0a9ba6756f1: tests/integration_pipeline.rs

tests/integration_pipeline.rs:

//! Piranha-style adaptive worker pools (paper §2.3: "ease of utilizing
//! idle workstation cycles [18, 14] … easy extension to fault-tolerant
//! operation").
//!
//! In the Piranha model, workstations *advance* into a computation when
//! idle and *retreat* when their owner returns. On FT-Linda this is a
//! small layer over the bag-of-tasks: a retreat request is itself a
//! tuple, checked by the worker between tasks with a strong `rdp`
//! (definitive answer, no lost retreats), and an involuntary departure —
//! a crash — is already covered by the failure-tuple monitor. The
//! combination gives the paper's claim: adaptive parallelism *and* fault
//! tolerance from the same two mechanisms.

use crate::bot::{BagOfTasks, POISON_ID};
use ftlinda::{Ags, FtError, MatchField as MF, Operand, Runtime, Value};
use linda_tuple::{PatField, Pattern, TypeTag};
use std::thread::JoinHandle;

/// Why an adaptive worker stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Departure {
    /// Drained by the poison pill (computation finished).
    Poisoned,
    /// Asked to retreat (owner reclaimed the workstation).
    Retreated,
    /// Runtime shut down underneath it.
    Shutdown,
}

/// An adaptive pool over a [`BagOfTasks`].
#[derive(Debug, Clone, Copy)]
pub struct AdaptivePool {
    bag: BagOfTasks,
}

impl AdaptivePool {
    /// Wrap an existing bag.
    pub fn new(bag: BagOfTasks) -> AdaptivePool {
        AdaptivePool { bag }
    }

    /// The underlying bag.
    pub fn bag(&self) -> BagOfTasks {
        self.bag
    }

    /// Ask the worker on `host` to retreat after its current task.
    /// Idempotent: a second request while one is pending is a no-op
    /// (strong `inp` of the previous tuple first would race; instead the
    /// worker consumes exactly one tuple per retreat).
    pub fn retreat(&self, rt: &Runtime, host: u32) -> Result<(), FtError> {
        rt.execute(&Ags::out_one(
            self.bag.ts(),
            vec![Operand::cst("retreat"), Operand::cst(host as i64)],
        ))
        .map(|_| ())
    }

    /// Cancel a pending retreat request for `host` (the owner went idle
    /// again before the worker noticed). Returns `true` if a request was
    /// revoked, `false` if the worker had already retreated or none was
    /// pending — a definitive answer, courtesy of strong `inp`.
    pub fn advance(&self, rt: &Runtime, host: u32) -> Result<bool, FtError> {
        let p = Pattern::new(vec![
            PatField::Actual(Value::Str("retreat".into())),
            PatField::Actual(Value::Int(host as i64)),
        ]);
        Ok(rt.inp(self.bag.ts(), &p)?.is_some())
    }

    /// Spawn an adaptive worker: between tasks it atomically checks for a
    /// retreat request addressed to its host (consuming it), and leaves
    /// the computation cleanly when one exists. Returns the departure
    /// reason and the number of tasks completed.
    pub fn spawn_adaptive_worker<F>(&self, rt: Runtime, f: F) -> JoinHandle<(Departure, usize)>
    where
        F: Fn(&Value) -> Value + Send + 'static,
    {
        let bag = self.bag;
        std::thread::spawn(move || {
            let mut done = 0usize;
            let me = rt.host().0 as i64;
            // ⟨ in("retreat", me) ⇒ or in("subtask", ?id, ?p) ⇒
            //     out("inprog", self, id, p) ⟩
            // One AGS: either a retreat is pending (preferred branch) or
            // a subtask is taken with its in-progress marker. Blocks when
            // neither exists — exactly the idle behaviour Piranha wants.
            let step = Ags::builder()
                .guard_in(bag.ts(), vec![MF::actual("retreat"), MF::actual(me)])
                .or()
                .guard_in(
                    bag.ts(),
                    vec![
                        MF::actual("subtask"),
                        MF::bind(TypeTag::Int),
                        MF::bind(TypeTag::Tuple),
                    ],
                )
                .out(
                    bag.ts(),
                    vec![
                        Operand::cst("inprog"),
                        Operand::SelfHost,
                        Operand::formal(0),
                        Operand::formal(1),
                    ],
                )
                .build()
                .expect("static");
            loop {
                let Ok(out) = rt.execute(&step) else {
                    return (Departure::Shutdown, done);
                };
                if out.branch == 0 {
                    return (Departure::Retreated, done);
                }
                let id = out.bindings[0].as_int().expect("id");
                let payload = out.bindings[1].as_tuple().expect("wrapped")[0].clone();
                if id == POISON_ID {
                    // Pass the pill on and leave.
                    let _ = bag.pass_on_poison(&rt);
                    return (Departure::Poisoned, done);
                }
                let result = f(&payload);
                match bag.commit_result(&rt, id, payload, result) {
                    Ok(true) => done += 1,
                    Ok(false) => {}
                    Err(_) => return (Departure::Shutdown, done),
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftlinda::Cluster;
    use std::time::Duration;

    fn double(v: &Value) -> Value {
        Value::Int(v.as_int().unwrap() * 2)
    }

    #[test]
    fn retreat_stops_worker_and_others_finish() {
        let (cluster, rts) = Cluster::new(3);
        let bag = BagOfTasks::create(&rts[0], "pool").unwrap();
        let pool = AdaptivePool::new(bag);
        let slow = |v: &Value| {
            std::thread::sleep(Duration::from_millis(10));
            double(v)
        };
        let ids = bag.seed(&rts[0], 0, (0..12).map(Value::Int)).unwrap();
        let w1 = pool.spawn_adaptive_worker(rts[1].clone(), slow);
        let w2 = pool.spawn_adaptive_worker(rts[2].clone(), slow);
        // Let host 2 start, then reclaim it.
        std::thread::sleep(Duration::from_millis(25));
        pool.retreat(&rts[0], 2).unwrap();
        let (why, done2) = w2.join().unwrap();
        assert_eq!(why, Departure::Retreated);
        // Everything still completes through host 1.
        let results = bag.collect(&rts[0], &ids).unwrap();
        assert_eq!(results.len(), 12);
        for (id, v) in &results {
            assert_eq!(v.as_int().unwrap(), id * 2);
        }
        bag.poison(&rts[0]).unwrap();
        let (why1, done1) = w1.join().unwrap();
        assert_eq!(why1, Departure::Poisoned);
        assert_eq!(done1 + done2, 12);
        cluster.shutdown();
    }

    #[test]
    fn advance_revokes_pending_retreat() {
        let (cluster, rts) = Cluster::new(2);
        let bag = BagOfTasks::create(&rts[0], "pool").unwrap();
        let pool = AdaptivePool::new(bag);
        pool.retreat(&rts[0], 1).unwrap();
        // Revoked before any worker consumed it.
        assert!(pool.advance(&rts[0], 1).unwrap());
        assert!(!pool.advance(&rts[0], 1).unwrap(), "nothing left to revoke");
        // Worker spawned now never sees a retreat: it drains the poison.
        bag.poison(&rts[0]).unwrap();
        let w = pool.spawn_adaptive_worker(rts[1].clone(), double);
        let (why, _) = w.join().unwrap();
        assert_eq!(why, Departure::Poisoned);
        cluster.shutdown();
    }

    #[test]
    fn idle_worker_blocks_until_work_or_retreat() {
        let (cluster, rts) = Cluster::new(2);
        let bag = BagOfTasks::create(&rts[0], "pool").unwrap();
        let pool = AdaptivePool::new(bag);
        let w = pool.spawn_adaptive_worker(rts[1].clone(), double);
        std::thread::sleep(Duration::from_millis(50));
        assert!(!w.is_finished(), "no work, no retreat: worker blocks");
        pool.retreat(&rts[0], 1).unwrap();
        let (why, done) = w.join().unwrap();
        assert_eq!((why, done), (Departure::Retreated, 0));
        cluster.shutdown();
    }

    #[test]
    fn crash_during_adaptive_work_recovered_by_monitor() {
        let (cluster, rts) = Cluster::new(3);
        let bag = BagOfTasks::create(&rts[0], "pool").unwrap();
        let pool = AdaptivePool::new(bag);
        let ids = bag.seed(&rts[0], 0, (0..8).map(Value::Int)).unwrap();
        let monitor = bag.spawn_monitor(rts[0].clone());
        let slow = |v: &Value| {
            std::thread::sleep(Duration::from_millis(15));
            double(v)
        };
        let _w1 = pool.spawn_adaptive_worker(rts[1].clone(), slow);
        let _w2 = pool.spawn_adaptive_worker(rts[2].clone(), slow);
        std::thread::sleep(Duration::from_millis(40));
        cluster.crash(ftlinda::HostId(2));
        let results = bag.collect(&rts[0], &ids).unwrap();
        assert_eq!(results.len(), 8);
        bag.stop_monitor(&rts[0]).unwrap();
        assert!(monitor.join().unwrap() >= 1);
        bag.poison(&rts[0]).unwrap();
        cluster.shutdown();
    }
}

/root/repo/target/debug/deps/table1_ags_latency-7cd0a77612a166bd.d: crates/bench/benches/table1_ags_latency.rs

/root/repo/target/debug/deps/table1_ags_latency-7cd0a77612a166bd: crates/bench/benches/table1_ags_latency.rs

crates/bench/benches/table1_ags_latency.rs:

//! The tuple-server RPC variant (paper §5.4, Figures 16/17).
//!
//! The paper's base architecture runs the FT-Linda library, Consul, and a
//! TS state machine on *every* participating host. The alternative it
//! sketches for hosts that should not carry replicas (e.g. personal
//! workstations donating idle cycles to a Piranha-style computation) is a
//! **tuple server**: the library forwards each AGS over RPC to a request
//! handler on a server host, which submits it to Consul as before and
//! returns the result. The cost is one extra round trip per AGS.
//!
//! [`TupleServer`] wraps a full [`Runtime`] and serves RPC clients;
//! [`RpcClient`] implements the same blocking call surface with the extra
//! hop (with a configurable simulated RPC latency so experiment E8 can
//! sweep it).

use crate::error::FtError;
use crate::runtime::Runtime;
use ftlinda_ags::{Ags, AgsOutcome, TsId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

enum RpcRequest {
    CreateTs {
        name: String,
        reply: crossbeam::channel::Sender<Result<TsId, FtError>>,
    },
    Execute {
        ags: Box<Ags>,
        reply: crossbeam::channel::Sender<Result<AgsOutcome, FtError>>,
    },
}

/// A request handler running on a replica-hosting machine, serving
/// library calls forwarded from non-replica hosts.
pub struct TupleServer {
    tx: crossbeam::channel::Sender<RpcRequest>,
    alive: Arc<AtomicBool>,
    rt: Runtime,
}

impl TupleServer {
    /// Start a server backed by `rt` with `handlers` worker threads (the
    /// paper's request handler processes).
    pub fn start(rt: Runtime, handlers: usize) -> TupleServer {
        let (tx, rx) = crossbeam::channel::unbounded::<RpcRequest>();
        let alive = Arc::new(AtomicBool::new(true));
        for i in 0..handlers.max(1) {
            let rx = rx.clone();
            let rt = rt.clone();
            let alive = alive.clone();
            std::thread::Builder::new()
                .name(format!("tuple-server-{i}"))
                .spawn(move || {
                    while alive.load(Ordering::Relaxed) {
                        match rx.recv_timeout(Duration::from_millis(100)) {
                            Ok(RpcRequest::CreateTs { name, reply }) => {
                                let _ = reply.send(rt.create_stable_ts(&name));
                            }
                            Ok(RpcRequest::Execute { ags, reply }) => {
                                let _ = reply.send(rt.execute(&ags));
                            }
                            Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                        }
                    }
                })
                .expect("spawn tuple server handler");
        }
        TupleServer { tx, alive, rt }
    }

    /// Render the backing host's metrics in Prometheus text format —
    /// the natural scrape point when non-replica clients go through RPC.
    pub fn metrics_text(&self) -> String {
        self.rt.metrics_text()
    }

    /// Connect a client with the given simulated one-way RPC latency.
    pub fn client(&self, rpc_latency: Duration) -> RpcClient {
        RpcClient {
            tx: self.tx.clone(),
            latency: rpc_latency,
        }
    }

    /// Stop the handler threads.
    pub fn stop(&self) {
        self.alive.store(false, Ordering::Relaxed);
    }
}

impl Drop for TupleServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// An FT-Linda client on a host with no local replica: every operation
/// pays one RPC round trip to the tuple server in addition to the normal
/// AGS cost.
#[derive(Clone)]
pub struct RpcClient {
    tx: crossbeam::channel::Sender<RpcRequest>,
    latency: Duration,
}

impl RpcClient {
    fn hop(&self) {
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
    }

    /// Create (or look up) a stable space via the server.
    pub fn create_stable_ts(&self, name: &str) -> Result<TsId, FtError> {
        let (rtx, rrx) = crossbeam::channel::bounded(1);
        self.hop();
        self.tx
            .send(RpcRequest::CreateTs {
                name: name.into(),
                reply: rtx,
            })
            .map_err(|_| FtError::Shutdown)?;
        let r = rrx.recv().map_err(|_| FtError::Shutdown)?;
        self.hop();
        r
    }

    /// Execute an AGS via the server (blocking).
    pub fn execute(&self, ags: &Ags) -> Result<AgsOutcome, FtError> {
        let (rtx, rrx) = crossbeam::channel::bounded(1);
        self.hop();
        self.tx
            .send(RpcRequest::Execute {
                ags: Box::new(ags.clone()),
                reply: rtx,
            })
            .map_err(|_| FtError::Shutdown)?;
        let r = rrx.recv().map_err(|_| FtError::Shutdown)?;
        self.hop();
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;
    use ftlinda_ags::{MatchField as MF, Operand};
    use linda_tuple::TypeTag;

    #[test]
    fn rpc_client_round_trip() {
        let (cluster, rts) = Cluster::new(2);
        let server = TupleServer::start(rts[0].clone(), 2);
        let client = server.client(Duration::ZERO);
        let ts = client.create_stable_ts("main").unwrap();
        client
            .execute(&Ags::out_one(ts, vec![Operand::cst("x"), Operand::cst(1)]))
            .unwrap();
        let o = client
            .execute(&Ags::in_one(ts, vec![MF::actual("x"), MF::bind(TypeTag::Int)]).unwrap())
            .unwrap();
        assert_eq!(o.bindings[0].as_int(), Some(1));
        cluster.shutdown();
    }

    #[test]
    fn rpc_and_direct_clients_interoperate() {
        let (cluster, rts) = Cluster::new(2);
        let server = TupleServer::start(rts[0].clone(), 1);
        let client = server.client(Duration::ZERO);
        let ts = rts[1].create_stable_ts("shared").unwrap();
        let ts2 = client.create_stable_ts("shared").unwrap();
        assert_eq!(ts, ts2);
        client
            .execute(&Ags::out_one(ts, vec![Operand::cst("from-rpc")]))
            .unwrap();
        assert_eq!(
            rts[1].in_(ts, &linda_tuple::pat!("from-rpc")).unwrap(),
            linda_tuple::tuple!("from-rpc")
        );
        cluster.shutdown();
    }

    #[test]
    fn rpc_latency_is_paid_per_call() {
        let (cluster, rts) = Cluster::new(2);
        let server = TupleServer::start(rts[0].clone(), 1);
        let slow = server.client(Duration::from_millis(10));
        let ts = slow.create_stable_ts("main").unwrap();
        let t0 = std::time::Instant::now();
        slow.execute(&Ags::out_one(ts, vec![Operand::cst(1)]))
            .unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(20), "two hops");
        cluster.shutdown();
    }
}

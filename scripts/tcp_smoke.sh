#!/usr/bin/env bash
# TCP transport smoke test: boot a 3-process, 2-shard cluster on
# localhost via the launcher, scrape every member's HTTP surface, then
# SIGKILL one member and relaunch it with --rejoin as the pingpong
# driver — the cluster must survive the kill, re-admit the new
# incarnation, and the driver must write the pingpong bench artifact
# ($BENCH_TCP_PINGPONG_JSON, default ./BENCH_tcp_pingpong.json).
set -euo pipefail
cd "$(dirname "$0")/.."

HOSTS=3
SHARDS=2
SEQ_BASE="${TCP_SMOKE_SEQ_BASE:-7460}"
HTTP_BASE="${TCP_SMOKE_HTTP_BASE:-8460}"
COUNT="${TCP_SMOKE_COUNT:-500}"
LOG_DIR="${TMPDIR:-/tmp}/ftlinda-tcp-smoke"
BENCH_OUT="${BENCH_TCP_PINGPONG_JSON:-$PWD/BENCH_tcp_pingpong.json}"

BIN=""
for candidate in target/release/ftlinda-node target/debug/ftlinda-node; do
  [ -x "$candidate" ] && BIN="$candidate" && break
done
if [ -z "$BIN" ]; then
  echo "tcp_smoke.sh: build ftlinda-node first (cargo build [--release])" >&2
  exit 2
fi

rm -rf "$LOG_DIR"
mkdir -p "$LOG_DIR"
rm -f "$BENCH_OUT"

./scripts/tcp_cluster.sh -n "$HOSTS" -k "$SHARDS" -p "$SEQ_BASE" \
  -H "$HTTP_BASE" -b "$BIN" -l "$LOG_DIR" >"$LOG_DIR/launcher.log" 2>&1 &
LAUNCHER=$!
cleanup() {
  kill "$LAUNCHER" 2>/dev/null || true
  wait "$LAUNCHER" 2>/dev/null || true
}
trap cleanup EXIT INT TERM

dump_logs() {
  for f in "$LOG_DIR"/launcher.log "$LOG_DIR"/node*.log; do
    echo "--- $f"
    cat "$f" 2>/dev/null || true
  done
}

# 1. Cluster formation: the launcher prints READY once every member has
#    converged on the full view.
for _ in $(seq 1 200); do
  grep -q '^READY' "$LOG_DIR/launcher.log" 2>/dev/null && break
  if ! kill -0 "$LAUNCHER" 2>/dev/null; then
    echo "tcp_smoke.sh: launcher exited early"; dump_logs; exit 1
  fi
  sleep 0.2
done
grep -q '^READY' "$LOG_DIR/launcher.log" || {
  echo "tcp_smoke.sh: cluster never formed"; dump_logs; exit 1
}

# 2. Every member serves the HTTP surface with a full live view and the
#    per-link transport counters.
FAIL=0
for ((i = 0; i < HOSTS; i++)); do
  addr="127.0.0.1:$((HTTP_BASE + i))"
  echo "--- member $i @ $addr"
  HEALTH="$(curl -sfS "http://$addr/healthz")" || { echo "  /healthz unreachable"; FAIL=1; continue; }
  echo "  $HEALTH"
  echo "$HEALTH" | grep -q '"live":true' || { echo "  member $i not live"; FAIL=1; }
  echo "$HEALTH" | grep -q '"view":\[0,1,2\]' || { echo "  member $i incomplete view"; FAIL=1; }
  curl -sfS "http://$addr/metrics" >/dev/null || { echo "  /metrics unreachable"; FAIL=1; }
  # The per-link transport counters live on the process-wide cluster
  # registry, merged into /metrics/cluster.
  METRICS="$(curl -sfS "http://$addr/metrics/cluster")" || { echo "  /metrics/cluster unreachable"; FAIL=1; continue; }
  for name in ftlinda_net_sent_bytes_total ftlinda_net_recv_bytes_total \
              ftlinda_net_reconnects_total ftlinda_frames_rejected_total; do
    echo "$METRICS" | grep -q "^$name" || { echo "  member $i missing $name"; FAIL=1; }
  done
done
[ "$FAIL" -eq 0 ] || { dump_logs; exit 1; }

# 3. Kill-one-process-then-rejoin: SIGKILL the idle member 2, then
#    relaunch it as the pingpong driver with --rejoin. It must re-form a
#    view with the survivors, drive COUNT round trips against member 0's
#    pong service across real sockets, and write the bench artifact.
VICTIM="$(cat "$LOG_DIR/node2.pid")"
kill -9 "$VICTIM" 2>/dev/null || true
# Reap via the launcher's wait; just give the kernel a beat to close fds.
sleep 0.3

PEERS="127.0.0.1:$SEQ_BASE,127.0.0.1:$((SEQ_BASE + 1)),127.0.0.1:$((SEQ_BASE + 2))"
if ! "$BIN" --id 2 --peers "$PEERS" --shards "$SHARDS" \
    --http-base "$HTTP_BASE" --role ping --rejoin \
    --count "$COUNT" --bench-out "$BENCH_OUT" \
    >"$LOG_DIR/node2-rejoin.log" 2>&1; then
  echo "tcp_smoke.sh: relaunched ping driver failed"
  cat "$LOG_DIR/node2-rejoin.log"; dump_logs; exit 1
fi

[ -s "$BENCH_OUT" ] || { echo "tcp_smoke.sh: no bench artifact at $BENCH_OUT"; dump_logs; exit 1; }
grep -q '"bench":"tcp_pingpong"' "$BENCH_OUT" || { echo "tcp_smoke.sh: malformed bench JSON:"; cat "$BENCH_OUT"; exit 1; }
grep -q "\"count\":$COUNT" "$BENCH_OUT" || { echo "tcp_smoke.sh: wrong count in bench JSON:"; cat "$BENCH_OUT"; exit 1; }
echo "tcp_pingpong bench: $(cat "$BENCH_OUT")"
echo "TCP smoke OK: 3-process cluster formed, scraped, survived kill -9 + rejoin"

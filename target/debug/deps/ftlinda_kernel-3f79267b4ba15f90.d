/root/repo/target/debug/deps/ftlinda_kernel-3f79267b4ba15f90.d: crates/kernel/src/lib.rs crates/kernel/src/exec.rs crates/kernel/src/kernel.rs crates/kernel/src/proto.rs

/root/repo/target/debug/deps/libftlinda_kernel-3f79267b4ba15f90.rlib: crates/kernel/src/lib.rs crates/kernel/src/exec.rs crates/kernel/src/kernel.rs crates/kernel/src/proto.rs

/root/repo/target/debug/deps/libftlinda_kernel-3f79267b4ba15f90.rmeta: crates/kernel/src/lib.rs crates/kernel/src/exec.rs crates/kernel/src/kernel.rs crates/kernel/src/proto.rs

crates/kernel/src/lib.rs:
crates/kernel/src/exec.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/proto.rs:

/root/repo/target/release/deps/linda_paradigms-6788aaa56c65a00b.d: crates/paradigms/src/lib.rs crates/paradigms/src/barrier.rs crates/paradigms/src/bot.rs crates/paradigms/src/checkpoint.rs crates/paradigms/src/consensus.rs crates/paradigms/src/distvar.rs crates/paradigms/src/dnc.rs crates/paradigms/src/pool.rs

/root/repo/target/release/deps/liblinda_paradigms-6788aaa56c65a00b.rlib: crates/paradigms/src/lib.rs crates/paradigms/src/barrier.rs crates/paradigms/src/bot.rs crates/paradigms/src/checkpoint.rs crates/paradigms/src/consensus.rs crates/paradigms/src/distvar.rs crates/paradigms/src/dnc.rs crates/paradigms/src/pool.rs

/root/repo/target/release/deps/liblinda_paradigms-6788aaa56c65a00b.rmeta: crates/paradigms/src/lib.rs crates/paradigms/src/barrier.rs crates/paradigms/src/bot.rs crates/paradigms/src/checkpoint.rs crates/paradigms/src/consensus.rs crates/paradigms/src/distvar.rs crates/paradigms/src/dnc.rs crates/paradigms/src/pool.rs

crates/paradigms/src/lib.rs:
crates/paradigms/src/barrier.rs:
crates/paradigms/src/bot.rs:
crates/paradigms/src/checkpoint.rs:
crates/paradigms/src/consensus.rs:
crates/paradigms/src/distvar.rs:
crates/paradigms/src/dnc.rs:
crates/paradigms/src/pool.rs:

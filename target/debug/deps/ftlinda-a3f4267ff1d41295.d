/root/repo/target/debug/deps/ftlinda-a3f4267ff1d41295.d: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/error.rs crates/core/src/runtime.rs crates/core/src/server.rs

/root/repo/target/debug/deps/libftlinda-a3f4267ff1d41295.rlib: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/error.rs crates/core/src/runtime.rs crates/core/src/server.rs

/root/repo/target/debug/deps/libftlinda-a3f4267ff1d41295.rmeta: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/error.rs crates/core/src/runtime.rs crates/core/src/server.rs

crates/core/src/lib.rs:
crates/core/src/cluster.rs:
crates/core/src/error.rs:
crates/core/src/runtime.rs:
crates/core/src/server.rs:

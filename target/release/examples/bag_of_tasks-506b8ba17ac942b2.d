/root/repo/target/release/examples/bag_of_tasks-506b8ba17ac942b2.d: examples/bag_of_tasks.rs

/root/repo/target/release/examples/bag_of_tasks-506b8ba17ac942b2: examples/bag_of_tasks.rs

examples/bag_of_tasks.rs:

//! Observability tour: per-stage AGS latency histograms, replica gauges,
//! the Prometheus text snapshot, and the digest-divergence detector.
//!
//! ```text
//! cargo run --example observability
//! ```

use ftlinda::{Cluster, HostId};
use linda_tuple::{pat, tuple};
use std::time::Duration;

fn main() {
    let (cluster, rts) = Cluster::builder()
        .hosts(3)
        .divergence_period(Duration::from_millis(5))
        .build();
    let ts = rts[0].create_stable_ts("main").unwrap();

    // Generate some traffic so every pipeline stage records samples.
    for i in 0..200i64 {
        rts[0].out(ts, tuple!("job", i)).unwrap();
    }
    for _ in 0..200 {
        rts[1].in_(ts, &pat!("job", ?int)).unwrap();
    }

    // Per-stage latency percentiles straight from the host registry.
    println!("per-stage AGS latency on host 0 (microseconds):");
    let obs = rts[0].obs();
    for stage in [
        "ftlinda_ags_submit_seconds",
        "ftlinda_ags_order_seconds",
        "ftlinda_ags_execute_seconds",
        "ftlinda_ags_notify_seconds",
        "ftlinda_ags_total_seconds",
    ] {
        let snap = obs.histogram(stage, "").snapshot();
        let us = |q: Option<f64>| q.map_or(0.0, |s| s * 1e6);
        println!(
            "  {stage:<30} n={:<6} p50={:>8.1} p95={:>8.1} p99={:>8.1}",
            snap.count(),
            us(snap.p50()),
            us(snap.p95()),
            us(snap.p99()),
        );
    }

    // The full Prometheus text snapshot (first lines shown).
    let text = rts[0].metrics_text();
    println!("\nmetrics_text() excerpt:");
    for line in text.lines().take(12) {
        println!("  {line}");
    }

    // Deliberately corrupt one replica, bypassing the ordered stream: the
    // divergence detector notices and emits a structured event.
    rts[2].fault_inject_local(ts, tuple!("phantom", 666));
    let div = cluster.obs().counter("ftlinda_digest_divergence_total", "");
    while div.get() == 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let ev = &cluster.obs().events().recent_of("digest_divergence")[0];
    println!(
        "\ndivergence detected at seq {} (counter = {})",
        ev.field("seq").unwrap(),
        div.get()
    );

    // Gauges ride along in the same snapshot.
    cluster.crash(HostId(2));
    rts[0].rd(ts, &pat!("failure", 2)).unwrap();
    println!(
        "applied_seq gauge on host 0: {}",
        rts[0].obs().gauge("ftlinda_applied_seq", "").get()
    );
    cluster.shutdown();
}

/root/repo/target/debug/examples/observability-46a6b26ec1f4311f.d: examples/observability.rs

/root/repo/target/debug/examples/observability-46a6b26ec1f4311f: examples/observability.rs

examples/observability.rs:

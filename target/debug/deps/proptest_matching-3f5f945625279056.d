/root/repo/target/debug/deps/proptest_matching-3f5f945625279056.d: tests/proptest_matching.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_matching-3f5f945625279056.rmeta: tests/proptest_matching.rs Cargo.toml

tests/proptest_matching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig_rpc_variant-6ac11111f0ce54b0.d: crates/bench/benches/fig_rpc_variant.rs

/root/repo/target/debug/deps/fig_rpc_variant-6ac11111f0ce54b0: crates/bench/benches/fig_rpc_variant.rs

crates/bench/benches/fig_rpc_variant.rs:

//! Parser/compiler from the textual Linda DSL to AGS IR.
//!
//! FT-lcc's two jobs (paper §5.2) are reproduced:
//!
//! 1. **Signature analysis** — every pattern and `out` template the
//!    program mentions is cataloged as an ordered type list in a
//!    [`SignatureCatalog`] (used by the runtime's signature-indexed
//!    matching).
//! 2. **AGS compilation** — `< guard => body or ... >` statements become
//!    validated [`Ags`] values ready for submission, with named formals
//!    resolved to dense indices and expressions compiled to the
//!    deterministic operand language.
//!
//! Grammar (ASCII rendition of the paper's notation):
//!
//! ```text
//! program  := item*
//! item     := 'stable' IDENT ';' | 'scratch' IDENT ';' | ags ';'? | op ';'
//! ags      := '<' branch ('or' branch)* '>'
//! branch   := guard '=>' op* (';'-separated)
//! guard    := 'true' | ('in'|'rd') '(' space ',' fields ')'
//! op       := ('out'|'in'|'rd') '(' space ',' fields ')'
//!           | ('move'|'copy') '(' space ',' space ',' fields ')'
//! fields   := field (',' field)*
//! field    := '?' TYPE IDENT? | expr
//! expr     := term (('+'|'-') term)*
//! term     := factor (('*'|'/'|'%') factor)*
//! factor   := literal | IDENT | IDENT '(' expr,* ')' | '(' expr ')' | '-' factor
//! ```
//!
//! Builtin identifiers: `self` (submitting host id), `seq` (the AGS's
//! global sequence number), `true`/`false`. Builtin functions: `min`,
//! `max`, `eq`, `ne`, `lt`, `le`, `gt`, `ge`, `not`, `and`, `or_`,
//! `concat`, `if_`, `int`, `float`.

use crate::lexer::{lex, LexError, TokKind, Token};
use ftlinda_ags::{
    Ags, AgsBuilder, AgsError, Func, MatchField, Operand, ScratchId, SpaceRef, TsId,
};
use linda_tuple::{Signature, SignatureCatalog, TypeTag, Value};
use std::collections::HashMap;
use std::fmt;

/// A compiled program: the statements in source order plus the signature
/// catalog FT-lcc would emit.
#[derive(Debug)]
pub struct Program {
    /// Compiled statements (each one AGS; simple ops are wrapped).
    pub statements: Vec<Ags>,
    /// Every distinct pattern/template signature in the program.
    pub catalog: SignatureCatalog,
    /// Stable spaces declared with `stable name;` in declaration order.
    pub declared_stables: Vec<String>,
    /// Scratch spaces declared with `scratch name;`.
    pub declared_scratches: Vec<String>,
}

/// A compile error with source position.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    /// Description.
    pub message: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for CompileError {}

impl From<LexError> for CompileError {
    fn from(e: LexError) -> Self {
        CompileError {
            message: e.message,
            line: e.line,
            col: e.col,
        }
    }
}

/// The FT-lcc compiler front-end. Bind space names before compiling, or
/// declare them in the source with `stable name;` / `scratch name;`
/// (auto-assigned sequential ids in declaration order).
#[derive(Debug, Default)]
pub struct Compiler {
    stables: HashMap<String, TsId>,
    scratches: HashMap<String, ScratchId>,
    next_stable: u32,
    next_scratch: u32,
}

impl Compiler {
    /// Fresh compiler with no bound spaces.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind a stable space name to a runtime-assigned id.
    pub fn bind_stable(&mut self, name: &str, id: TsId) -> &mut Self {
        self.stables.insert(name.to_owned(), id);
        if id.0 >= self.next_stable {
            self.next_stable = id.0 + 1;
        }
        self
    }

    /// Bind a scratch space name.
    pub fn bind_scratch(&mut self, name: &str, id: ScratchId) -> &mut Self {
        self.scratches.insert(name.to_owned(), id);
        if id.0 >= self.next_scratch {
            self.next_scratch = id.0 + 1;
        }
        self
    }

    /// Compile a program.
    pub fn compile(&mut self, src: &str) -> Result<Program, CompileError> {
        let tokens = lex(src)?;
        let mut p = Parser {
            tokens,
            pos: 0,
            compiler: self,
            catalog: SignatureCatalog::new(),
            declared_stables: Vec::new(),
            declared_scratches: Vec::new(),
        };
        let statements = p.program()?;
        Ok(Program {
            statements,
            catalog: p.catalog,
            declared_stables: p.declared_stables,
            declared_scratches: p.declared_scratches,
        })
    }
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    compiler: &'a mut Compiler,
    catalog: SignatureCatalog,
    declared_stables: Vec<String>,
    declared_scratches: Vec<String>,
}

/// Per-branch formal environment: names and types in binding order.
#[derive(Default)]
struct Env {
    formals: Vec<(Option<String>, TypeTag)>,
}

impl Env {
    fn lookup(&self, name: &str) -> Option<u16> {
        self.formals
            .iter()
            .position(|(n, _)| n.as_deref() == Some(name))
            .map(|i| i as u16)
    }
    fn types(&self) -> Vec<TypeTag> {
        self.formals.iter().map(|(_, t)| *t).collect()
    }
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, CompileError> {
        let t = self.peek();
        Err(CompileError {
            message: msg.into(),
            line: t.line,
            col: t.col,
        })
    }

    fn expect(&mut self, kind: &TokKind) -> Result<(), CompileError> {
        if &self.peek().kind == kind {
            self.next();
            Ok(())
        } else {
            self.err(format!("expected {kind}, found {}", self.peek().kind))
        }
    }

    fn eat_ident(&mut self) -> Result<String, CompileError> {
        match &self.peek().kind {
            TokKind::Ident(s) => {
                let s = s.clone();
                self.next();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn is_ident(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokKind::Ident(s) if s == kw)
    }

    fn program(&mut self) -> Result<Vec<Ags>, CompileError> {
        let mut out = Vec::new();
        loop {
            match &self.peek().kind {
                TokKind::Eof => return Ok(out),
                TokKind::LAngle => {
                    out.push(self.ags()?);
                    // optional trailing semicolon
                    if self.peek().kind == TokKind::Semi {
                        self.next();
                    }
                }
                TokKind::Ident(s) if s == "stable" || s == "scratch" => {
                    let kw = self.eat_ident()?;
                    let name = self.eat_ident()?;
                    self.expect(&TokKind::Semi)?;
                    if kw == "stable" {
                        if !self.compiler.stables.contains_key(&name) {
                            let id = TsId(self.compiler.next_stable);
                            self.compiler.next_stable += 1;
                            self.compiler.stables.insert(name.clone(), id);
                        }
                        self.declared_stables.push(name);
                    } else {
                        if !self.compiler.scratches.contains_key(&name) {
                            let id = ScratchId(self.compiler.next_scratch);
                            self.compiler.next_scratch += 1;
                            self.compiler.scratches.insert(name.clone(), id);
                        }
                        self.declared_scratches.push(name);
                    }
                }
                TokKind::Ident(_) => {
                    // a bare op: compile as a single-op AGS
                    out.push(self.bare_op()?);
                    self.expect(&TokKind::Semi)?;
                }
                other => return self.err(format!("expected statement, found {other}")),
            }
        }
    }

    /// A bare `out`/`in`/`rd`/`inp`/`rdp` statement outside an AGS.
    fn bare_op(&mut self) -> Result<Ags, CompileError> {
        let op = self.eat_ident()?;
        let builder = Ags::builder();
        let ags = match op.as_str() {
            "out" => {
                let (space, template) = self.out_args(&Env::default())?;
                builder.guard_true().out(space, template)
            }
            "in" | "rd" | "inp" | "rdp" => {
                let mut env = Env::default();
                let (space, fields) = self.match_args(&mut env, true)?;
                let b = if op.starts_with("in") {
                    builder.guard_in(space, fields)
                } else {
                    builder.guard_rd(space, fields)
                };
                if op.ends_with('p') {
                    b.or().guard_true()
                } else {
                    b
                }
            }
            other => return self.err(format!("unknown operation `{other}`")),
        };
        self.finish(ags)
    }

    fn finish(&self, b: AgsBuilder) -> Result<Ags, CompileError> {
        b.build().map_err(|e: AgsError| {
            let t = &self.tokens[self.pos.saturating_sub(1)];
            CompileError {
                message: format!("invalid AGS: {e}"),
                line: t.line,
                col: t.col,
            }
        })
    }

    fn ags(&mut self) -> Result<Ags, CompileError> {
        self.expect(&TokKind::LAngle)?;
        let mut builder = Ags::builder();
        let mut first = true;
        loop {
            if !first {
                builder = builder.or();
            }
            first = false;
            let mut env = Env::default();
            // guard
            builder = if self.is_ident("true") {
                self.next();
                builder.guard_true()
            } else if self.is_ident("in") || self.is_ident("rd") {
                let op = self.eat_ident()?;
                let (space, fields) = self.match_args(&mut env, true)?;
                if op == "in" {
                    builder.guard_in(space, fields)
                } else {
                    builder.guard_rd(space, fields)
                }
            } else {
                return self.err("expected guard (`true`, `in`, or `rd`)");
            };
            self.expect(&TokKind::Arrow)?;
            // body: ops separated by `;`, ended by `or` or `>`
            loop {
                if self.is_ident("or") || self.peek().kind == TokKind::RAngle {
                    break;
                }
                let op = self.eat_ident()?;
                builder = match op.as_str() {
                    "out" => {
                        let (space, template) = self.out_args(&env)?;
                        builder.out(space, template)
                    }
                    "in" => {
                        let (space, fields) = self.match_args(&mut env, true)?;
                        builder.in_(space, fields)
                    }
                    "rd" => {
                        let (space, fields) = self.match_args(&mut env, true)?;
                        builder.rd(space, fields)
                    }
                    "move" => {
                        let (from, to, fields) = self.move_args(&mut env)?;
                        builder.move_(from, to, fields)
                    }
                    "copy" => {
                        let (from, to, fields) = self.move_args(&mut env)?;
                        builder.copy(from, to, fields)
                    }
                    other => return self.err(format!("unknown body operation `{other}`")),
                };
                if self.peek().kind == TokKind::Semi {
                    self.next();
                }
            }
            if self.is_ident("or") {
                self.next();
                continue;
            }
            self.expect(&TokKind::RAngle)?;
            return self.finish(builder);
        }
    }

    fn space(&mut self) -> Result<SpaceRef, CompileError> {
        let name = self.eat_ident()?;
        if let Some(&id) = self.compiler.stables.get(&name) {
            Ok(SpaceRef::Stable(id))
        } else if let Some(&id) = self.compiler.scratches.get(&name) {
            Ok(SpaceRef::Scratch(id))
        } else {
            self.err(format!("unknown tuple space `{name}`"))
        }
    }

    /// `( space , fields )` where fields may bind formals.
    fn match_args(
        &mut self,
        env: &mut Env,
        allow_binds: bool,
    ) -> Result<(SpaceRef, Vec<MatchField>), CompileError> {
        self.expect(&TokKind::LParen)?;
        let space = self.space()?;
        let mut fields = Vec::new();
        while self.peek().kind == TokKind::Comma {
            self.next();
            if self.peek().kind == TokKind::Question {
                self.next();
                let tname = self.eat_ident()?;
                let tag = TypeTag::from_name(&tname).ok_or_else(|| CompileError {
                    message: format!("unknown type `{tname}`"),
                    line: self.peek().line,
                    col: self.peek().col,
                })?;
                // optional binder name
                let name = match &self.peek().kind {
                    TokKind::Ident(s) if !["or"].contains(&s.as_str()) && !self.is_op_start() => {
                        let n = s.clone();
                        self.next();
                        Some(n)
                    }
                    _ => None,
                };
                if !allow_binds && name.is_some() {
                    return self.err("wildcards in move/copy patterns cannot be named");
                }
                if name.is_some() && env.lookup(name.as_deref().unwrap()).is_some() {
                    return self.err(format!(
                        "formal `{}` already bound",
                        name.as_deref().unwrap()
                    ));
                }
                env.formals.push((name, tag));
                fields.push(MatchField::Bind(tag));
            } else {
                let e = self.expr(env)?;
                fields.push(MatchField::Expr(e));
            }
        }
        self.expect(&TokKind::RParen)?;
        self.catalog_fields(&fields, env);
        Ok((space, fields))
    }

    fn is_op_start(&self) -> bool {
        false // binder-name lookahead hook; names are plain identifiers
    }

    /// `( space , expr, ... )` for `out`.
    fn out_args(&mut self, env: &Env) -> Result<(SpaceRef, Vec<Operand>), CompileError> {
        self.expect(&TokKind::LParen)?;
        let space = self.space()?;
        let mut template = Vec::new();
        while self.peek().kind == TokKind::Comma {
            self.next();
            template.push(self.expr(env)?);
        }
        self.expect(&TokKind::RParen)?;
        self.catalog_template(&template, env);
        Ok((space, template))
    }

    /// `( from , to , fields )` for `move`/`copy`.
    fn move_args(
        &mut self,
        env: &mut Env,
    ) -> Result<(SpaceRef, SpaceRef, Vec<MatchField>), CompileError> {
        self.expect(&TokKind::LParen)?;
        let from = self.space()?;
        self.expect(&TokKind::Comma)?;
        let to = self.space()?;
        let mut fields = Vec::new();
        let before = env.formals.len();
        while self.peek().kind == TokKind::Comma {
            self.next();
            if self.peek().kind == TokKind::Question {
                self.next();
                let tname = self.eat_ident()?;
                let tag = TypeTag::from_name(&tname).ok_or_else(|| CompileError {
                    message: format!("unknown type `{tname}`"),
                    line: self.peek().line,
                    col: self.peek().col,
                })?;
                fields.push(MatchField::Bind(tag));
            } else {
                let e = self.expr(env)?;
                fields.push(MatchField::Expr(e));
            }
        }
        self.expect(&TokKind::RParen)?;
        // move/copy wildcards bind nothing.
        env.formals.truncate(before);
        self.catalog_fields(&fields, env);
        Ok((from, to, fields))
    }

    fn catalog_fields(&mut self, fields: &[MatchField], env: &Env) {
        let tags: Option<Vec<TypeTag>> = fields
            .iter()
            .map(|f| match f {
                MatchField::Bind(t) => Some(*t),
                MatchField::Expr(op) => op.static_type(&env.types()),
            })
            .collect();
        if let Some(tags) = tags {
            self.catalog.intern(Signature::new(tags));
        }
    }

    fn catalog_template(&mut self, template: &[Operand], env: &Env) {
        let tags: Option<Vec<TypeTag>> = template
            .iter()
            .map(|op| op.static_type(&env.types()))
            .collect();
        if let Some(tags) = tags {
            self.catalog.intern(Signature::new(tags));
        }
    }

    // ----- expressions ----------------------------------------------------

    fn expr(&mut self, env: &Env) -> Result<Operand, CompileError> {
        let mut lhs = self.term(env)?;
        loop {
            let func = match self.peek().kind {
                TokKind::Plus => Func::Add,
                TokKind::Minus => Func::Sub,
                _ => return Ok(lhs),
            };
            self.next();
            let rhs = self.term(env)?;
            lhs = Operand::Apply(func, vec![lhs, rhs]);
        }
    }

    fn term(&mut self, env: &Env) -> Result<Operand, CompileError> {
        let mut lhs = self.factor(env)?;
        loop {
            let func = match self.peek().kind {
                TokKind::Star => Func::Mul,
                TokKind::Slash => Func::Div,
                TokKind::Percent => Func::Mod,
                _ => return Ok(lhs),
            };
            self.next();
            let rhs = self.factor(env)?;
            lhs = Operand::Apply(func, vec![lhs, rhs]);
        }
    }

    fn factor(&mut self, env: &Env) -> Result<Operand, CompileError> {
        match self.peek().kind.clone() {
            TokKind::Int(i) => {
                self.next();
                Ok(Operand::Const(Value::Int(i)))
            }
            TokKind::Float(x) => {
                self.next();
                Ok(Operand::Const(Value::Float(x)))
            }
            TokKind::Str(s) => {
                self.next();
                Ok(Operand::Const(Value::Str(s)))
            }
            TokKind::Char(c) => {
                self.next();
                Ok(Operand::Const(Value::Char(c)))
            }
            TokKind::Minus => {
                self.next();
                let inner = self.factor(env)?;
                // Fold negated numeric literals so `-8` is the constant
                // −8 (canonical IR), not an application of Neg.
                Ok(match inner {
                    Operand::Const(Value::Int(i)) => Operand::Const(Value::Int(i.wrapping_neg())),
                    Operand::Const(Value::Float(x)) => Operand::Const(Value::Float(-x)),
                    other => Operand::Apply(Func::Neg, vec![other]),
                })
            }
            TokKind::LParen => {
                self.next();
                let e = self.expr(env)?;
                self.expect(&TokKind::RParen)?;
                Ok(e)
            }
            TokKind::Ident(name) => {
                self.next();
                if self.peek().kind == TokKind::LParen {
                    return self.call(&name, env);
                }
                match name.as_str() {
                    "true" => Ok(Operand::Const(Value::Bool(true))),
                    "false" => Ok(Operand::Const(Value::Bool(false))),
                    "self" => Ok(Operand::SelfHost),
                    "seq" => Ok(Operand::RequestSeq),
                    _ => match env.lookup(&name) {
                        Some(i) => Ok(Operand::Formal(i)),
                        None => self.err(format!("unknown identifier `{name}`")),
                    },
                }
            }
            other => self.err(format!("expected expression, found {other}")),
        }
    }

    fn call(&mut self, name: &str, env: &Env) -> Result<Operand, CompileError> {
        let func = match name {
            "min" => Func::Min,
            "max" => Func::Max,
            "eq" => Func::Eq,
            "ne" => Func::Ne,
            "lt" => Func::Lt,
            "le" => Func::Le,
            "gt" => Func::Gt,
            "ge" => Func::Ge,
            "not" => Func::Not,
            "and" => Func::And,
            "or_" => Func::Or,
            "concat" => Func::Concat,
            "if_" => Func::If,
            "int" => Func::ToInt,
            "float" => Func::ToFloat,
            other => return self.err(format!("unknown function `{other}`")),
        };
        self.expect(&TokKind::LParen)?;
        let mut args = Vec::new();
        if self.peek().kind != TokKind::RParen {
            loop {
                args.push(self.expr(env)?);
                if self.peek().kind == TokKind::Comma {
                    self.next();
                } else {
                    break;
                }
            }
        }
        self.expect(&TokKind::RParen)?;
        if args.len() != func.arity() {
            return self.err(format!(
                "`{name}` expects {} arguments, got {}",
                func.arity(),
                args.len()
            ));
        }
        Ok(Operand::Apply(func, args))
    }
}

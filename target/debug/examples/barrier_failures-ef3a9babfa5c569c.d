/root/repo/target/debug/examples/barrier_failures-ef3a9babfa5c569c.d: examples/barrier_failures.rs

/root/repo/target/debug/examples/barrier_failures-ef3a9babfa5c569c: examples/barrier_failures.rs

examples/barrier_failures.rs:

//! E10 — the price of stability: volatile local Linda vs replicated
//! stable tuple spaces.
//!
//! The same out+in workload runs against (a) a `LocalSpace` (classic
//! Linda, one process, no fault tolerance), and (b) stable TSs replicated
//! on 1–5 hosts. Expected shape: the stable path costs orders of
//! magnitude more than a local mutex-protected store (every op is an
//! ordered multicast + replicated apply), growing mildly with replica
//! count — which is why FT-Linda also keeps *scratch* spaces local.

use criterion::{criterion_group, criterion_main, Criterion};
use ftlinda::{Ags, Cluster, MatchField as MF, Operand, TypeTag};
use linda_space::LocalSpace;
use linda_tuple::{pat, tuple};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ft_overhead");
    g.sample_size(15).measurement_time(Duration::from_secs(2));

    // Baseline: classic local Linda.
    let ls = LocalSpace::new();
    ls.out(tuple!("x", 0));
    g.bench_function("local_space_out_in", |b| {
        b.iter(|| {
            ls.out(tuple!("x", 1));
            ls.in_(&pat!("x", ?int)).unwrap();
        })
    });

    // Scratch space via the runtime (local, unreplicated).
    let (cluster1, rts1) = Cluster::new(1);
    let (_sid, scratch) = rts1[0].create_scratch();
    g.bench_function("scratch_space_out_in", |b| {
        b.iter(|| {
            scratch.out(tuple!("x", 1));
            scratch.in_(&pat!("x", ?int)).unwrap();
        })
    });

    // Stable spaces at increasing replica counts.
    println!("\nE10 — out+in pair cost by replication degree:");
    for n in [1u32, 2, 3, 5] {
        let (cluster, rts) = Cluster::new(n);
        let ts = rts[0].create_stable_ts("main").unwrap();
        let ags = Ags::builder()
            .guard_true()
            .out(ts, vec![Operand::cst("x"), Operand::cst(1)])
            .in_(ts, vec![MF::actual("x"), MF::bind(TypeTag::Int)])
            .build()
            .unwrap();
        let reps = 200;
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            rts[0].execute(&ags).unwrap();
        }
        linda_bench::print_row(
            &format!("stable TS, {n} replicas"),
            format!("{:>9.1} µs", t0.elapsed().as_secs_f64() * 1e6 / reps as f64),
        );
        g.bench_function(format!("stable_{n}_replicas_out_in"), |b| {
            b.iter(|| rts[0].execute(&ags).unwrap())
        });
        cluster.shutdown();
    }
    g.finish();
    cluster1.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Property test for the group-commit invariant: a batched and an
//! unbatched sequencer must deliver the *same* totally-ordered App
//! stream for a single-origin workload (submit FIFO is preserved
//! through coalescing), and kernels applying the two streams must
//! converge to identical digests at every prefix.

use bytes::Bytes;
use consul_sim::{BatchConfig, Delivery, HostId, NetConfig, SeqGroup};
use ftlinda_ags::{Ags, MatchField as MF, Operand, TsId};
use ftlinda_kernel::{encode_request, Kernel, Request};
use linda_tuple::TypeTag;
use proptest::prelude::*;
use std::time::{Duration, Instant};

const HEADS: [&str; 3] = ["a", "b", "c"];

/// One client operation against the (single) stable space.
#[derive(Debug, Clone)]
enum Op {
    /// Deposit `(head, v)`.
    Out { head: usize, v: i64 },
    /// Blocking withdraw of `(head, ?int)` — may park in the blocked
    /// queue, which the digest also covers.
    In { head: usize },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0usize..3, 0i64..5).prop_map(|(head, v)| Op::Out { head, v }),
            2 => (0usize..3).prop_map(|head| Op::In { head }),
        ],
        1..24,
    )
}

fn encode_ops(ops: &[Op]) -> Vec<Bytes> {
    let mut reqs = vec![Bytes::from(encode_request(&Request::CreateTs {
        name: "main".into(),
    }))];
    for op in ops {
        let ags: Ags = match op {
            Op::Out { head, v } => {
                Ags::out_one(TsId(0), vec![Operand::cst(HEADS[*head]), Operand::cst(*v)])
            }
            Op::In { head } => Ags::in_one(
                TsId(0),
                vec![MF::actual(HEADS[*head]), MF::bind(TypeTag::Int)],
            )
            .unwrap(),
        };
        reqs.push(Bytes::from(encode_request(&Request::Ags(ags))));
    }
    reqs
}

/// Order `reqs` from a single member through a sequencer group running
/// `batch`, returning the App deliveries a third (passive) member sees.
fn ordered_stream(reqs: &[Bytes], batch: BatchConfig) -> Vec<Delivery> {
    let cfg = NetConfig {
        latency: Duration::from_micros(200),
        ..NetConfig::default()
    };
    let (g, ms) = SeqGroup::new_with_batch(3, cfg, batch);
    for r in reqs {
        ms[1].broadcast(r.clone());
    }
    let mut out = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(10);
    while out.len() < reqs.len() && Instant::now() < deadline {
        if let Ok(d) = ms[2].deliveries().recv_timeout(Duration::from_millis(20)) {
            if matches!(d, Delivery::App { .. }) {
                out.push(d);
            }
        }
    }
    g.shutdown();
    out
}

fn payloads(ds: &[Delivery]) -> Vec<Bytes> {
    ds.iter()
        .map(|d| match d {
            Delivery::App { payload, .. } => payload.clone(),
            other => panic!("expected App delivery, got {other:?}"),
        })
        .collect()
}

proptest! {
    // Each case spins up two full sequencer groups; keep the case count
    // modest so the suite stays fast.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batched_and_unbatched_streams_converge(ops in arb_ops()) {
        let reqs = encode_ops(&ops);
        let batched = ordered_stream(&reqs, BatchConfig::default());
        let solo = ordered_stream(&reqs, BatchConfig::disabled());
        prop_assert_eq!(batched.len(), reqs.len(), "batched run delivered all");
        prop_assert_eq!(solo.len(), reqs.len(), "unbatched run delivered all");
        // Single-origin FIFO: coalescing must not reorder the stream.
        prop_assert_eq!(payloads(&batched), payloads(&solo));

        // Replicas fed the two streams agree at every prefix — batching
        // is invisible to the state machine.
        let (tx_a, _rx_a) = crossbeam::channel::unbounded();
        let (tx_b, _rx_b) = crossbeam::channel::unbounded();
        let mut ka = Kernel::new(HostId(2), tx_a);
        let mut kb = Kernel::new(HostId(2), tx_b);
        for (da, db) in batched.iter().zip(solo.iter()) {
            ka.apply(da);
            kb.apply(db);
            prop_assert_eq!(ka.digest(), kb.digest(), "prefix digests diverged");
        }
        prop_assert_eq!(ka.applied_seq(), kb.applied_seq());
    }
}

/root/repo/target/debug/deps/linda_paradigms-c4a77ed339d4c134.d: crates/paradigms/src/lib.rs crates/paradigms/src/barrier.rs crates/paradigms/src/bot.rs crates/paradigms/src/checkpoint.rs crates/paradigms/src/consensus.rs crates/paradigms/src/distvar.rs crates/paradigms/src/dnc.rs crates/paradigms/src/pool.rs Cargo.toml

/root/repo/target/debug/deps/liblinda_paradigms-c4a77ed339d4c134.rmeta: crates/paradigms/src/lib.rs crates/paradigms/src/barrier.rs crates/paradigms/src/bot.rs crates/paradigms/src/checkpoint.rs crates/paradigms/src/consensus.rs crates/paradigms/src/distvar.rs crates/paradigms/src/dnc.rs crates/paradigms/src/pool.rs Cargo.toml

crates/paradigms/src/lib.rs:
crates/paradigms/src/barrier.rs:
crates/paradigms/src/bot.rs:
crates/paradigms/src/checkpoint.rs:
crates/paradigms/src/consensus.rs:
crates/paradigms/src/distvar.rs:
crates/paradigms/src/dnc.rs:
crates/paradigms/src/pool.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

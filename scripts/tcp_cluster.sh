#!/usr/bin/env bash
# Boot an N-process FT-Linda cluster on localhost TCP and keep it running
# until this script is interrupted (the nodes are its children).
#
#   scripts/tcp_cluster.sh [-n HOSTS] [-k SHARDS] [-p SEQ_BASE_PORT]
#                          [-H HTTP_BASE_PORT] [-b BINARY] [-l LOG_DIR]
#
# Member i listens for sequencer traffic on SEQ_BASE_PORT+i and serves
# /metrics, /healthz etc. on HTTP_BASE_PORT+i. Member 0 runs the pong
# service; the rest are idle replicas. Drive a benchmark against the
# running cluster with:
#
#   ftlinda-node --id <free-id> ... --role ping
#
# or kill one member (kill -9 <pid from LOG_DIR/node<i>.pid>) and relaunch
# it with --rejoin to watch the snapshot rejoin path across processes.

set -euo pipefail

HOSTS=3
SHARDS=2
SEQ_BASE=7400
HTTP_BASE=8400
BIN=""
LOG_DIR="${TMPDIR:-/tmp}/ftlinda-cluster"

while getopts "n:k:p:H:b:l:h" opt; do
  case "$opt" in
    n) HOSTS="$OPTARG" ;;
    k) SHARDS="$OPTARG" ;;
    p) SEQ_BASE="$OPTARG" ;;
    H) HTTP_BASE="$OPTARG" ;;
    b) BIN="$OPTARG" ;;
    l) LOG_DIR="$OPTARG" ;;
    h)
      sed -n '2,17p' "$0"
      exit 0
      ;;
    *) exit 2 ;;
  esac
done

cd "$(dirname "$0")/.."
if [ -z "$BIN" ]; then
  for candidate in target/release/ftlinda-node target/debug/ftlinda-node; do
    [ -x "$candidate" ] && BIN="$candidate" && break
  done
fi
if [ -z "$BIN" ]; then
  echo "tcp_cluster.sh: build ftlinda-node first (cargo build [--release])" >&2
  exit 2
fi

PEERS=""
for ((i = 0; i < HOSTS; i++)); do
  PEERS+="${PEERS:+,}127.0.0.1:$((SEQ_BASE + i))"
done

mkdir -p "$LOG_DIR"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT INT TERM

for ((i = 0; i < HOSTS; i++)); do
  role=idle
  [ "$i" -eq 0 ] && role=pong
  "$BIN" --id "$i" --peers "$PEERS" --shards "$SHARDS" \
    --http-base "$HTTP_BASE" --role "$role" \
    >"$LOG_DIR/node$i.log" 2>&1 &
  PIDS+=($!)
  echo "$!" >"$LOG_DIR/node$i.pid"
done

echo "cluster: $HOSTS hosts, $SHARDS shards, seq ports $SEQ_BASE+, http ports $HTTP_BASE+"
echo "logs:    $LOG_DIR/node<i>.log  pids: $LOG_DIR/node<i>.pid"

# Wait for every member to report READY (cluster formed), then park.
for ((i = 0; i < HOSTS; i++)); do
  for _ in $(seq 1 150); do
    grep -q "^READY" "$LOG_DIR/node$i.log" 2>/dev/null && break
    sleep 0.2
  done
  if ! grep -q "^READY" "$LOG_DIR/node$i.log" 2>/dev/null; then
    echo "tcp_cluster.sh: node $i never became READY; its log:" >&2
    cat "$LOG_DIR/node$i.log" >&2
    exit 3
  fi
done
echo "READY: all $HOSTS members converged"

wait

/root/repo/target/release/deps/linda_paradigms-ca7f9ec71673407d.d: crates/paradigms/src/lib.rs crates/paradigms/src/barrier.rs crates/paradigms/src/bot.rs crates/paradigms/src/checkpoint.rs crates/paradigms/src/consensus.rs crates/paradigms/src/distvar.rs crates/paradigms/src/dnc.rs crates/paradigms/src/pool.rs

/root/repo/target/release/deps/liblinda_paradigms-ca7f9ec71673407d.rlib: crates/paradigms/src/lib.rs crates/paradigms/src/barrier.rs crates/paradigms/src/bot.rs crates/paradigms/src/checkpoint.rs crates/paradigms/src/consensus.rs crates/paradigms/src/distvar.rs crates/paradigms/src/dnc.rs crates/paradigms/src/pool.rs

/root/repo/target/release/deps/liblinda_paradigms-ca7f9ec71673407d.rmeta: crates/paradigms/src/lib.rs crates/paradigms/src/barrier.rs crates/paradigms/src/bot.rs crates/paradigms/src/checkpoint.rs crates/paradigms/src/consensus.rs crates/paradigms/src/distvar.rs crates/paradigms/src/dnc.rs crates/paradigms/src/pool.rs

crates/paradigms/src/lib.rs:
crates/paradigms/src/barrier.rs:
crates/paradigms/src/bot.rs:
crates/paradigms/src/checkpoint.rs:
crates/paradigms/src/consensus.rs:
crates/paradigms/src/distvar.rs:
crates/paradigms/src/dnc.rs:
crates/paradigms/src/pool.rs:

/root/repo/target/debug/deps/linda_bench-1597c618a1472310.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/linda_bench-1597c618a1472310: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

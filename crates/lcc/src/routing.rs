//! Static shard-routing analysis for compiled programs.
//!
//! Under a sharded deployment (`ClusterBuilder::shards(K)` with K > 1)
//! every AGS routes by the set of `(space, signature)` buckets it can
//! touch: one owning shard → a direct submit on that shard's total
//! order; several → the three-leg cross-shard commit (DESIGN.md §13),
//! which costs 2·S + 1 ordered multicasts for S participating shards
//! instead of 1. That cost is *statically* knowable, so the precompiler
//! surfaces it: [`shard_report`] classifies each statement of a compiled
//! [`Program`](crate::Program) exactly the way the runtime router will,
//! letting programmers see — before deploying — which statements
//! serialize through the cross-shard path and re-shape them if the
//! multiplied write throughput matters.

use ftlinda_ags::{imbalance_bp, shard_of, static_keys, Ags, ShardKey};

/// Where one statement executes under a K-way sharded deployment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// All signature buckets live on one shard (statements touching no
    /// stable space at all route to shard 0): a single ordered
    /// multicast, full sharded throughput.
    Single(u32),
    /// Buckets span several shards: the statement commits via the
    /// lock/exec/release protocol across the listed shards (ascending).
    Cross(Vec<u32>),
    /// The statement contains an operand whose type cannot be decided
    /// statically (only degenerate, never-evaluable operands do this);
    /// the runtime rejects it with `FtError::Unroutable` under K > 1.
    Unroutable,
}

/// Routing classification of one compiled statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatementRoute {
    /// Index into `Program::statements`.
    pub index: usize,
    /// The `(space, signature-hash)` buckets the statement can touch,
    /// sorted; `None` when undecidable.
    pub keys: Option<Vec<ShardKey>>,
    /// The routing decision the runtime will make.
    pub route: Route,
}

impl StatementRoute {
    /// Ordered multicasts one execution of this statement costs: 1 on
    /// the single-shard fast path, 2·S + 1 through the cross-shard
    /// commit, 0 for a statement the runtime rejects.
    pub fn expected_multicasts(&self) -> u64 {
        match &self.route {
            Route::Single(_) => 1,
            Route::Cross(shards) => 2 * shards.len() as u64 + 1,
            Route::Unroutable => 0,
        }
    }
}

/// Shard-routing report for a whole program at a given shard count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// The deployment's shard count this report was computed for.
    pub shards: u32,
    /// One row per program statement, in program order.
    pub statements: Vec<StatementRoute>,
}

impl ShardReport {
    /// Statements that pay the cross-shard commit protocol.
    pub fn cross_count(&self) -> usize {
        self.statements
            .iter()
            .filter(|s| matches!(s.route, Route::Cross(_)))
            .count()
    }

    /// Statements the runtime would reject as unroutable.
    pub fn unroutable_count(&self) -> usize {
        self.statements
            .iter()
            .filter(|s| s.route == Route::Unroutable)
            .count()
    }

    /// Total ordered multicasts one pass over the program costs —
    /// every statement executed once at its [`expected_multicasts`]
    /// price.
    ///
    /// [`expected_multicasts`]: StatementRoute::expected_multicasts
    pub fn expected_cost(&self) -> u64 {
        self.statements
            .iter()
            .map(StatementRoute::expected_multicasts)
            .sum()
    }

    /// Expected ordered-multicast load per shard for one pass over the
    /// program: a single-shard statement charges its owner 1; a
    /// cross-shard statement charges every participant its lock +
    /// release and the home (lowest) shard the exec on top. This is the
    /// static feed for the runtime's per-shard load census — it prices
    /// the *order streams*, the resource sharding multiplies.
    pub fn expected_shard_load(&self) -> Vec<u64> {
        let mut loads = vec![0u64; self.shards.max(1) as usize];
        for s in &self.statements {
            match &s.route {
                Route::Single(shard) => loads[*shard as usize] += 1,
                Route::Cross(shards) => {
                    for shard in shards {
                        loads[*shard as usize] += 2;
                    }
                    if let Some(home) = shards.first() {
                        loads[*home as usize] += 1;
                    }
                }
                Route::Unroutable => {}
            }
        }
        loads
    }

    /// Static load imbalance of the program in integer basis points
    /// (0 = even, 10000 = one shard carries everything) — the
    /// compile-time counterpart of the runtime census gauge
    /// `ftlinda_shard_imbalance_bp`, computed with the same formula
    /// ([`ftlinda_ags::imbalance_bp`]) over [`expected_shard_load`].
    ///
    /// [`expected_shard_load`]: ShardReport::expected_shard_load
    pub fn imbalance_bp(&self) -> i64 {
        imbalance_bp(&self.expected_shard_load())
    }

    /// Human-readable rendering, one line per statement.
    pub fn render(&self) -> String {
        let mut out = format!("shard routing (K={})\n", self.shards);
        for s in &self.statements {
            let buckets = s.keys.as_ref().map_or(0, Vec::len);
            match &s.route {
                Route::Single(shard) => {
                    out.push_str(&format!(
                        "  #{}: single shard {shard} ({buckets} bucket{})\n",
                        s.index,
                        if buckets == 1 { "" } else { "s" }
                    ));
                }
                Route::Cross(shards) => {
                    let list: Vec<String> = shards.iter().map(u32::to_string).collect();
                    out.push_str(&format!(
                        "  #{}: CROSS shards {{{}}} ({buckets} buckets, {} multicasts)\n",
                        s.index,
                        list.join(","),
                        2 * shards.len() + 1
                    ));
                }
                Route::Unroutable => {
                    out.push_str(&format!("  #{}: UNROUTABLE\n", s.index));
                }
            }
        }
        let loads: Vec<String> = self
            .expected_shard_load()
            .iter()
            .map(u64::to_string)
            .collect();
        out.push_str(&format!(
            "  expected: {} multicasts/pass, per-shard load [{}], imbalance {} bp\n",
            self.expected_cost(),
            loads.join(","),
            self.imbalance_bp()
        ));
        out
    }
}

/// Classify each statement the way the runtime router will at `shards`
/// shards. With `shards <= 1` everything is `Single(0)`.
pub fn shard_report(statements: &[Ags], shards: u32) -> ShardReport {
    let statements = statements
        .iter()
        .enumerate()
        .map(|(index, ags)| {
            if shards <= 1 {
                return StatementRoute {
                    index,
                    keys: static_keys(ags),
                    route: Route::Single(0),
                };
            }
            match static_keys(ags) {
                None => StatementRoute {
                    index,
                    keys: None,
                    route: Route::Unroutable,
                },
                Some(keys) => {
                    let mut owners: Vec<u32> = keys
                        .iter()
                        .map(|(ts, sig)| shard_of(*ts, *sig, shards))
                        .collect();
                    owners.sort_unstable();
                    owners.dedup();
                    let route = match owners.as_slice() {
                        [] => Route::Single(0),
                        [one] => Route::Single(*one),
                        _ => Route::Cross(owners.clone()),
                    };
                    StatementRoute {
                        index,
                        keys: Some(keys),
                        route,
                    }
                }
            }
        })
        .collect();
    ShardReport { shards, statements }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Compiler;
    use ftlinda_ags::TsId;

    fn routes(src: &str, shards: u32) -> Vec<Route> {
        let prog = Compiler::new().compile(src).unwrap();
        shard_report(&prog.statements, shards)
            .statements
            .into_iter()
            .map(|s| s.route)
            .collect()
    }

    #[test]
    fn single_signature_program_is_single_shard() {
        let r = routes(
            r#"
            stable ts;
            out(ts, "n", 1);
            < in(ts, "n", ?int v) => out(ts, "n", v + 1) >
            "#,
            4,
        );
        assert_eq!(r.len(), 2);
        for route in &r {
            assert!(matches!(route, Route::Single(_)), "{route:?}");
        }
        // Same signature everywhere → same shard everywhere.
        assert_eq!(r[0], r[1]);
    }

    #[test]
    fn k1_is_always_shard_zero() {
        let r = routes(
            r#"
            stable ts;
            out(ts, "n", 1);
            out(ts, "s", "x", "y");
            "#,
            1,
        );
        assert!(r.iter().all(|x| *x == Route::Single(0)));
    }

    #[test]
    fn mixed_signature_statement_can_cross_shards() {
        // [Str,Int] and [Str,Str] land on different shards of space 0
        // under K=2 (asserted, not assumed).
        let prog = Compiler::new()
            .compile(
                r#"
                stable ts;
                < in(ts, "x", ?int v) => out(ts, "y", "done") >
                "#,
            )
            .unwrap();
        let report = shard_report(&prog.statements, 2);
        let keys = report.statements[0].keys.as_ref().unwrap();
        assert_eq!(keys.len(), 2);
        let owners: Vec<u32> = keys
            .iter()
            .map(|(ts, sig)| shard_of(*ts, *sig, 2))
            .collect();
        if owners[0] != owners[1] {
            assert!(matches!(report.statements[0].route, Route::Cross(ref s) if s.len() == 2));
            assert_eq!(report.cross_count(), 1);
        } else {
            assert!(matches!(report.statements[0].route, Route::Single(_)));
        }
    }

    #[test]
    fn scratch_only_statement_routes_to_shard_zero() {
        let mut c = Compiler::new();
        c.bind_scratch("tmp", ftlinda_ags::ScratchId(1));
        let prog = c.compile(r#"scratch tmp; out(tmp, "local", 1);"#).unwrap();
        let report = shard_report(&prog.statements, 4);
        assert_eq!(report.statements[0].route, Route::Single(0));
        assert_eq!(report.statements[0].keys.as_deref(), Some(&[][..]));
    }

    #[test]
    fn render_mentions_cross_and_multicast_cost() {
        let report = ShardReport {
            shards: 4,
            statements: vec![
                StatementRoute {
                    index: 0,
                    keys: Some(vec![(TsId(0), 1)]),
                    route: Route::Single(3),
                },
                StatementRoute {
                    index: 1,
                    keys: Some(vec![(TsId(0), 1), (TsId(0), 2)]),
                    route: Route::Cross(vec![1, 3]),
                },
                StatementRoute {
                    index: 2,
                    keys: None,
                    route: Route::Unroutable,
                },
            ],
        };
        let text = report.render();
        assert!(text.contains("single shard 3"));
        assert!(text.contains("CROSS shards {1,3}"));
        assert!(text.contains("5 multicasts"));
        assert!(text.contains("UNROUTABLE"));
        assert!(text.contains("expected: 6 multicasts/pass"));
        assert!(text.contains("imbalance"));
    }

    #[test]
    fn expected_cost_feeds_the_shard_census() {
        let report = ShardReport {
            shards: 4,
            statements: vec![
                StatementRoute {
                    index: 0,
                    keys: Some(vec![(TsId(0), 1)]),
                    route: Route::Single(3),
                },
                StatementRoute {
                    index: 1,
                    keys: Some(vec![(TsId(0), 1), (TsId(0), 2)]),
                    route: Route::Cross(vec![1, 3]),
                },
                StatementRoute {
                    index: 2,
                    keys: None,
                    route: Route::Unroutable,
                },
            ],
        };
        assert_eq!(report.statements[0].expected_multicasts(), 1);
        assert_eq!(report.statements[1].expected_multicasts(), 5);
        assert_eq!(report.statements[2].expected_multicasts(), 0);
        assert_eq!(report.expected_cost(), 6);
        // Shard 1 is the cross home: lock+release (2) + exec (1) = 3;
        // shard 3 pays its lock+release (2) plus the single submit (1).
        assert_eq!(report.expected_shard_load(), vec![0, 3, 0, 3]);
        // Heaviest share 3/6 at K=4 → (0.5 − 0.25)/0.75 → 3333 bp.
        assert_eq!(report.imbalance_bp(), 3333);
        // An even program reads 0.
        let even = ShardReport {
            shards: 2,
            statements: (0..2)
                .map(|index| StatementRoute {
                    index,
                    keys: Some(vec![(TsId(0), index as u64)]),
                    route: Route::Single(index as u32),
                })
                .collect(),
        };
        assert_eq!(even.imbalance_bp(), 0);
    }
}

//! Federated observability across OS processes: boot a 3-member TCP
//! cluster of `ftlinda-node` processes, run one cross-shard AGS with a
//! trace id, and assemble its complete span tree from *any* member's
//! `/cluster/trace/<id>` endpoint — per-host attribution, per-shard
//! lanes, the 2·S+1 multicast entries, all of it crossing real sockets.
//! Then the dishonest-truncation case: kill a member and prove the
//! merged tree says so (`truncated_hosts`) instead of quietly shrinking.

use std::collections::HashSet;
use std::io::{BufRead, BufReader, Read};
use std::net::{SocketAddr, TcpListener};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const NODE: &str = env!("CARGO_BIN_EXE_ftlinda-node");

fn free_addrs(n: usize) -> Vec<SocketAddr> {
    (0..n)
        .map(|_| {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        })
        .collect()
}

fn peers_arg(addrs: &[SocketAddr]) -> String {
    addrs
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// A free base port with `n` consecutive free successors — the HTTP
/// exporter of member `i` binds `base + i`, so federation needs a
/// contiguous block.
fn free_http_base(n: u16) -> u16 {
    for _ in 0..64 {
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let base = probe.local_addr().unwrap().port();
        if base.checked_add(n).is_none() {
            continue;
        }
        let rest: Vec<_> = (1..n)
            .map(|i| TcpListener::bind(("127.0.0.1", base + i)))
            .collect();
        if rest.iter().all(|r| r.is_ok()) {
            return base;
        }
    }
    panic!("no contiguous free port block found");
}

fn http(base: u16, member: u16) -> SocketAddr {
    SocketAddr::from(([127, 0, 0, 1], base + member))
}

/// A node process that is SIGKILLed when the test ends (or panics).
struct Node(Child);

impl Node {
    fn spawn(peers: &str, id: u32, role: &str, extra: &[&str]) -> Node {
        let mut cmd = Command::new(NODE);
        cmd.args(["--id", &id.to_string(), "--peers", peers, "--role", role])
            .args(["--shards", "2"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped());
        Node(cmd.spawn().expect("spawn ftlinda-node"))
    }

    /// Read stdout lines until one starts with `prefix`. EOF (the
    /// process died) panics with everything captured so far.
    fn expect_line(&mut self, prefix: &str) -> String {
        let stdout = self.0.stdout.take().expect("stdout piped");
        let mut seen = String::new();
        for line in BufReader::new(stdout).lines() {
            let line = line.expect("read child stdout");
            seen.push_str(&line);
            seen.push('\n');
            if line.starts_with(prefix) {
                return line;
            }
        }
        let mut err = String::new();
        if let Some(mut s) = self.0.stderr.take() {
            let _ = s.read_to_string(&mut err);
        }
        panic!("no '{prefix}' line before EOF:\nstdout:\n{seen}\nstderr:\n{err}");
    }
}

impl Drop for Node {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// The distinct `(stage, shard)` multicast entries and the set of hosts
/// attributed in a `/cluster/trace` JSON body, considering only the
/// cross-shard kernel stages.
fn lane_entries(body: &str) -> (HashSet<(String, String)>, HashSet<String>) {
    let mut entries = HashSet::new();
    let mut hosts = HashSet::new();
    for span in body.split("{\"stage\":\"").skip(1) {
        let stage = span.split('"').next().unwrap_or("").to_string();
        if !matches!(stage.as_str(), "xlock" | "xexec" | "xrelease") {
            continue;
        }
        let host = span
            .split("\"host\":")
            .nth(1)
            .and_then(|r| r.split(',').next())
            .unwrap_or("?")
            .to_string();
        let shard = span
            .split("\"shard\":\"")
            .nth(1)
            .and_then(|r| r.split('"').next())
            .unwrap_or("?")
            .to_string();
        entries.insert((stage, shard));
        hosts.insert(host);
    }
    (entries, hosts)
}

fn get_trace(addr: SocketAddr, id: &str) -> Option<String> {
    let (status, body) = ftlinda::http_get(
        addr,
        &format!("/cluster/trace/{id}"),
        Duration::from_secs(5),
    )
    .ok()?;
    (status == 200).then_some(body)
}

/// Poll `addr` until the federated tree of `id` satisfies `good`, or
/// panic with the last body after `secs`.
fn await_tree(addr: SocketAddr, id: &str, secs: u64, good: impl Fn(&str) -> bool) -> String {
    let deadline = Instant::now() + Duration::from_secs(secs);
    let mut last = String::from("(never fetched)");
    loop {
        if let Some(body) = get_trace(addr, id) {
            if good(&body) {
                return body;
            }
            last = body;
        }
        assert!(
            Instant::now() < deadline,
            "tree at {addr} never converged; last body:\n{last}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// A cross-shard trace started in one OS process is retrievable — whole
/// — from every member of the cluster: 2·S+1 distinct `(stage, shard)`
/// multicast entries (S=2: one xlock + one xrelease per shard, one
/// xexec at the home shard) with spans attributed to all three hosts.
#[test]
fn cross_shard_trace_is_whole_from_every_member() {
    let addrs = free_addrs(3);
    let peers = peers_arg(&addrs);
    let base = free_http_base(3);
    let hb = ["--http-base", &base.to_string()];

    let _idle1 = Node::spawn(&peers, 1, "idle", &hb);
    let _idle2 = Node::spawn(&peers, 2, "idle", &hb);
    let mut origin = Node::spawn(&peers, 0, "xtrace", &hb);
    let line = origin.expect_line("XTRACE id=");
    let id = line.trim_start_matches("XTRACE id=").trim().to_string();

    let complete = |body: &str| {
        let (entries, hosts) = lane_entries(body);
        entries.len() == 5 && hosts.len() == 3
    };
    for member in 0..3u16 {
        let body = await_tree(http(base, member), &id, 30, complete);
        let (entries, hosts) = lane_entries(&body);
        assert_eq!(entries.len(), 5, "member {member}: {body}");
        let stages: HashSet<&str> = entries.iter().map(|(s, _)| s.as_str()).collect();
        assert_eq!(
            stages,
            ["xlock", "xexec", "xrelease"].into_iter().collect(),
            "member {member}: {body}"
        );
        assert_eq!(
            hosts,
            ["0", "1", "2"].map(String::from).into_iter().collect(),
            "member {member}: {body}"
        );
        assert!(body.contains("\"shards\":[0,1]"), "member {member}: {body}");
        assert!(
            body.contains("\"truncated\":false"),
            "member {member}: {body}"
        );
        assert!(
            body.contains("\"truncated_hosts\":[]"),
            "member {member}: {body}"
        );
    }
}

/// Kill one member mid-trace: the federated tree from a survivor still
/// carries every surviving member's spans (each replica applied all five
/// multicast entries locally, so the lanes stay whole) but names the
/// dead member in `truncated_hosts` instead of pretending nothing is
/// missing. Heartbeat timeouts are set long so the failure detector
/// cannot declare the member dead first — a *detected* failure is
/// legitimately skipped, which is the other branch.
#[test]
fn killed_member_mid_trace_marks_truncated_hosts() {
    let addrs = free_addrs(3);
    let peers = peers_arg(&addrs);
    let base = free_http_base(3);
    let base_s = base.to_string();
    let extra = [
        "--http-base",
        &base_s,
        "--hb-period-ms",
        "100",
        "--hb-timeout-ms",
        "120000",
    ];

    let _idle1 = Node::spawn(&peers, 1, "idle", &extra);
    let victim = Node::spawn(&peers, 2, "idle", &extra);
    let mut origin = Node::spawn(&peers, 0, "xtrace", &extra);
    let line = origin.expect_line("XTRACE id=");
    let id = line.trim_start_matches("XTRACE id=").trim().to_string();

    // First let the full tree converge so the kill happens strictly
    // after every member holds its spans.
    await_tree(http(base, 1), &id, 30, |body| {
        let (entries, hosts) = lane_entries(body);
        entries.len() == 5 && hosts.len() == 3
    });

    drop(victim); // SIGKILL

    let truncated = |body: &str| {
        let (entries, hosts) = lane_entries(body);
        body.contains("\"truncated\":true")
            && body.contains("\"truncated_hosts\":[2]")
            && entries.len() == 5
            && hosts == ["0", "1"].map(String::from).into_iter().collect()
    };
    // Both survivors agree: still 2·S+1 lanes from their own replicas,
    // host 2's spans gone, and the hole is declared.
    for member in [0u16, 1] {
        await_tree(http(base, member), &id, 30, truncated);
    }
}

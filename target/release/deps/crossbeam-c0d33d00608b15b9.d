/root/repo/target/release/deps/crossbeam-c0d33d00608b15b9.d: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-c0d33d00608b15b9.rlib: vendor/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-c0d33d00608b15b9.rmeta: vendor/crossbeam/src/lib.rs

vendor/crossbeam/src/lib.rs:

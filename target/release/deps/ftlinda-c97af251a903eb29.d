/root/repo/target/release/deps/ftlinda-c97af251a903eb29.d: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/error.rs crates/core/src/runtime.rs crates/core/src/server.rs

/root/repo/target/release/deps/libftlinda-c97af251a903eb29.rlib: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/error.rs crates/core/src/runtime.rs crates/core/src/server.rs

/root/repo/target/release/deps/libftlinda-c97af251a903eb29.rmeta: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/error.rs crates/core/src/runtime.rs crates/core/src/server.rs

crates/core/src/lib.rs:
crates/core/src/cluster.rs:
crates/core/src/error.rs:
crates/core/src/runtime.rs:
crates/core/src/server.rs:

/root/repo/target/debug/deps/ablation_ordering-d6626400a18d6c93.d: crates/bench/benches/ablation_ordering.rs

/root/repo/target/debug/deps/ablation_ordering-d6626400a18d6c93: crates/bench/benches/ablation_ordering.rs

crates/bench/benches/ablation_ordering.rs:

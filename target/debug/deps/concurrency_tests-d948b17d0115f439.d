/root/repo/target/debug/deps/concurrency_tests-d948b17d0115f439.d: crates/space/tests/concurrency_tests.rs Cargo.toml

/root/repo/target/debug/deps/libconcurrency_tests-d948b17d0115f439.rmeta: crates/space/tests/concurrency_tests.rs Cargo.toml

crates/space/tests/concurrency_tests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

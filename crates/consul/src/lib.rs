//! # consul-sim
//!
//! A simulated stand-in for Consul, the communication substrate the paper
//! builds FT-Linda on: a network of fail-silent workstations with
//! totally-ordered atomic multicast, membership/failure notification, and
//! message accounting.
//!
//! Components:
//!
//! * [`SimNet`] — the simulated LAN: per-link latency + jitter, FIFO
//!   links, crash/restart injection, a delayed perfect failure detector.
//! * [`SeqGroup`]/[`SeqMember`] — fixed-sequencer total-order multicast
//!   with coordinator failover, gap repair, and log-replay rejoin. This is
//!   what the FT-Linda runtime uses.
//! * [`IsisGroup`]/[`IsisMember`] — ISIS-style agreed-timestamp ordering
//!   (failure-free), for the ordering-protocol ablation (A1).
//! * [`NetStats`]/[`OrderStats`] — the measurement instruments for the
//!   "one multicast per AGS" experiment (E9).

#![warn(missing_docs)]

mod isis;
mod net;
mod order;
mod sequencer;
mod stats;
mod tcp;
mod transport;
mod wire;

pub use isis::{IsisGroup, IsisMember, IsisMsg};
pub use net::{Heartbeat, HostId, NetConfig, NetEvent, NicModel, SimNet, WireSized};
pub use order::{BatchEntry, CheckpointImage, Delivery, LocalId, Protocol, Record, RecordBody};
pub use sequencer::{BatchConfig, CheckpointConfig, SeqGroup, SeqMember, SeqMsg};
pub use stats::{NetStats, OrderStats};
pub use tcp::{bind_reuse, TcpConfig, TcpLane, TcpMesh};
pub use transport::SeqNet;
pub use wire::{decode_seq_msg, encode_seq_msg, MAX_FRAME_BYTES};

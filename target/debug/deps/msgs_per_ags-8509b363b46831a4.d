/root/repo/target/debug/deps/msgs_per_ags-8509b363b46831a4.d: crates/bench/benches/msgs_per_ags.rs

/root/repo/target/debug/deps/msgs_per_ags-8509b363b46831a4: crates/bench/benches/msgs_per_ags.rs

crates/bench/benches/msgs_per_ags.rs:

/root/repo/target/release/deps/linda_obs-869c2e402ff44154.d: crates/obs/src/lib.rs

/root/repo/target/release/deps/liblinda_obs-869c2e402ff44154.rlib: crates/obs/src/lib.rs

/root/repo/target/release/deps/liblinda_obs-869c2e402ff44154.rmeta: crates/obs/src/lib.rs

crates/obs/src/lib.rs:

//! Patterns (anti-tuples) and associative matching.
//!
//! A pattern is a sequence of fields, each either an *actual* (a concrete
//! value that must compare equal) or a *formal* (a typed wildcard `?T` that
//! binds the corresponding tuple field). `in`/`rd` block until a tuple in
//! the space matches; the formals then carry values back to the caller.

use crate::signature::Signature;
use crate::tuple::Tuple;
use crate::value::{TypeTag, Value};
use std::fmt;

/// One field of a pattern.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PatField {
    /// A concrete value that must be equal in the matched tuple.
    Actual(Value),
    /// A typed formal (`?int`, `?str`, ...) that binds the tuple's field.
    Formal(TypeTag),
}

impl PatField {
    /// The type this field requires of the tuple field at its position.
    pub fn type_tag(&self) -> TypeTag {
        match self {
            PatField::Actual(v) => v.type_tag(),
            PatField::Formal(t) => *t,
        }
    }

    /// Whether this field is a formal.
    pub fn is_formal(&self) -> bool {
        matches!(self, PatField::Formal(_))
    }
}

impl From<Value> for PatField {
    fn from(v: Value) -> Self {
        PatField::Actual(v)
    }
}

impl From<TypeTag> for PatField {
    fn from(t: TypeTag) -> Self {
        PatField::Formal(t)
    }
}

/// An anti-tuple: the argument of `in`, `rd`, `inp`, `rdp`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Pattern {
    fields: Vec<PatField>,
}

impl Pattern {
    /// Build a pattern from its fields.
    pub fn new(fields: Vec<PatField>) -> Self {
        Pattern { fields }
    }

    /// A pattern of all formals with the given signature — matches *any*
    /// tuple of that signature. Used by `move`/`copy` and recovery code.
    pub fn any_with_signature(sig: &Signature) -> Self {
        Pattern {
            fields: sig.tags().iter().map(|&t| PatField::Formal(t)).collect(),
        }
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Whether the pattern has no fields (matches only the empty tuple).
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Borrow the fields.
    pub fn fields(&self) -> &[PatField] {
        &self.fields
    }

    /// Positions and types of the formals, in field order. The i-th entry
    /// of the result corresponds to formal index i — the index space used
    /// by AGS bodies to refer to guard-bound values.
    pub fn formals(&self) -> Vec<(usize, TypeTag)> {
        self.fields
            .iter()
            .enumerate()
            .filter_map(|(i, f)| match f {
                PatField::Formal(t) => Some((i, *t)),
                PatField::Actual(_) => None,
            })
            .collect()
    }

    /// Number of formals.
    pub fn formal_count(&self) -> usize {
        self.fields.iter().filter(|f| f.is_formal()).count()
    }

    /// The signature this pattern can match (arity + ordered types). A
    /// pattern matches only tuples with exactly this signature.
    pub fn signature(&self) -> Signature {
        self.fields.iter().map(PatField::type_tag).collect()
    }

    /// Test whether `tuple` matches this pattern.
    pub fn matches(&self, tuple: &Tuple) -> bool {
        if tuple.arity() != self.fields.len() {
            return false;
        }
        self.fields
            .iter()
            .zip(tuple.fields())
            .all(|(p, v)| match p {
                PatField::Actual(a) => a == v,
                PatField::Formal(t) => *t == v.type_tag(),
            })
    }

    /// Match and extract the formal bindings, in formal-index order.
    /// Returns `None` when the tuple does not match.
    pub fn bind(&self, tuple: &Tuple) -> Option<Vec<Value>> {
        if !self.matches(tuple) {
            return None;
        }
        Some(
            self.fields
                .iter()
                .zip(tuple.fields())
                .filter(|(p, _)| p.is_formal())
                .map(|(_, v)| v.clone())
                .collect(),
        )
    }

    /// The longest prefix of actual values (used for constant-prefix
    /// indexing in the tuple store: most Linda patterns start with a string
    /// "name" actual, e.g. `("subtask", ?int)`).
    pub fn actual_prefix(&self) -> &[PatField] {
        let n = self.fields.iter().take_while(|f| !f.is_formal()).count();
        &self.fields[..n]
    }

    /// First-field actual value, if the first field is an actual. The store
    /// uses it as a secondary bucket key.
    pub fn head_actual(&self) -> Option<&Value> {
        match self.fields.first() {
            Some(PatField::Actual(v)) => Some(v),
            _ => None,
        }
    }

    /// Whether every field is an actual — such a pattern matches exactly
    /// one tuple value.
    pub fn is_ground(&self) -> bool {
        self.fields.iter().all(|f| !f.is_formal())
    }

    /// Convert a fully-actual pattern into the tuple it denotes.
    pub fn to_tuple(&self) -> Option<Tuple> {
        self.fields
            .iter()
            .map(|f| match f {
                PatField::Actual(v) => Some(v.clone()),
                PatField::Formal(_) => None,
            })
            .collect::<Option<Vec<Value>>>()
            .map(Tuple::new)
    }
}

impl From<&Tuple> for Pattern {
    /// A ground pattern matching exactly `t`.
    fn from(t: &Tuple) -> Self {
        Pattern::new(t.fields().iter().cloned().map(PatField::Actual).collect())
    }
}

impl FromIterator<PatField> for Pattern {
    fn from_iter<I: IntoIterator<Item = PatField>>(iter: I) -> Self {
        Pattern::new(iter.into_iter().collect())
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, p) in self.fields.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            match p {
                PatField::Actual(v) => write!(f, "{v}")?,
                PatField::Formal(t) => write!(f, "?{t}")?,
            }
        }
        f.write_str(")")
    }
}

/// Convenience constructor for patterns.
///
/// Actuals are written as expressions; formals as `?int`, `?float`, `?bool`,
/// `?char`, `?str`, `?bytes`, `?tup`:
///
/// ```
/// use linda_tuple::{pat, tuple};
/// let p = pat!("count", ?int);
/// assert!(p.matches(&tuple!("count", 17)));
/// ```
#[macro_export]
macro_rules! pat {
    (@formal int)   => { $crate::PatField::Formal($crate::TypeTag::Int) };
    (@formal float) => { $crate::PatField::Formal($crate::TypeTag::Float) };
    (@formal bool)  => { $crate::PatField::Formal($crate::TypeTag::Bool) };
    (@formal char)  => { $crate::PatField::Formal($crate::TypeTag::Char) };
    (@formal str)   => { $crate::PatField::Formal($crate::TypeTag::Str) };
    (@formal bytes) => { $crate::PatField::Formal($crate::TypeTag::Bytes) };
    (@formal tup)   => { $crate::PatField::Formal($crate::TypeTag::Tuple) };
    (@parse [$($acc:expr,)*]) => { $crate::Pattern::new(vec![$($acc),*]) };
    (@parse [$($acc:expr,)*] ? $t:ident $(, $($rest:tt)*)?) => {
        $crate::pat!(@parse [$($acc,)* $crate::pat!(@formal $t),] $($($rest)*)?)
    };
    (@parse [$($acc:expr,)*] $v:expr $(, $($rest:tt)*)?) => {
        $crate::pat!(@parse
            [$($acc,)* $crate::PatField::Actual($crate::Value::from($v)),]
            $($($rest)*)?)
    };
    () => { $crate::Pattern::new(vec![]) };
    ($($rest:tt)+) => { $crate::pat!(@parse [] $($rest)+) };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn ground_match() {
        let p = pat!("count", 42);
        assert!(p.matches(&tuple!("count", 42)));
        assert!(!p.matches(&tuple!("count", 41)));
        assert!(!p.matches(&tuple!("count", 42, 0)));
        assert!(p.is_ground());
        assert_eq!(p.to_tuple(), Some(tuple!("count", 42)));
    }

    #[test]
    fn formal_match_and_bind() {
        let p = pat!("count", ?int);
        let t = tuple!("count", 7);
        assert!(p.matches(&t));
        assert_eq!(p.bind(&t), Some(vec![Value::Int(7)]));
        assert_eq!(p.bind(&tuple!("other", 7)), None);
        assert!(!p.is_ground());
        assert_eq!(p.to_tuple(), None);
    }

    #[test]
    fn formal_requires_type() {
        let p = pat!("x", ?int);
        assert!(!p.matches(&tuple!("x", 1.0)));
        assert!(!p.matches(&tuple!("x", "1")));
    }

    #[test]
    fn multiple_formals_bind_in_order() {
        let p = pat!(?str, ?int, "end", ?float);
        let t = tuple!("job", 3, "end", 2.5);
        assert_eq!(
            p.bind(&t),
            Some(vec![
                Value::Str("job".into()),
                Value::Int(3),
                Value::Float(2.5)
            ])
        );
        assert_eq!(
            p.formals(),
            vec![(0, TypeTag::Str), (1, TypeTag::Int), (3, TypeTag::Float)]
        );
        assert_eq!(p.formal_count(), 3);
    }

    #[test]
    fn empty_pattern_matches_empty_tuple_only() {
        let p = Pattern::new(vec![]);
        assert!(p.matches(&Tuple::empty()));
        assert!(!p.matches(&tuple!(1)));
        assert!(p.is_empty());
    }

    #[test]
    fn signature_agrees_with_matched_tuples() {
        let p = pat!("job", ?int, ?float);
        let t = tuple!("job", 1, 1.0);
        assert!(p.matches(&t));
        assert_eq!(p.signature(), t.signature());
    }

    #[test]
    fn any_with_signature_matches_all_of_that_shape() {
        let sig = tuple!("a", 1).signature();
        let p = Pattern::any_with_signature(&sig);
        assert!(p.matches(&tuple!("a", 1)));
        assert!(p.matches(&tuple!("zzz", -5)));
        assert!(!p.matches(&tuple!(1, "a")));
    }

    #[test]
    fn head_actual_and_prefix() {
        let p = pat!("job", 3, ?int);
        assert_eq!(p.head_actual(), Some(&Value::Str("job".into())));
        assert_eq!(p.actual_prefix().len(), 2);
        let q = pat!(?str, 3);
        assert_eq!(q.head_actual(), None);
        assert_eq!(q.actual_prefix().len(), 0);
    }

    #[test]
    fn pattern_from_tuple_is_ground() {
        let t = tuple!("v", 9);
        let p = Pattern::from(&t);
        assert!(p.is_ground());
        assert!(p.matches(&t));
        assert!(!p.matches(&tuple!("v", 10)));
    }

    #[test]
    fn display() {
        assert_eq!(pat!("c", ?int).to_string(), "(\"c\", ?int)");
    }

    #[test]
    fn all_formal_macro_kinds() {
        let p = pat!(?int, ?float, ?bool, ?char, ?str, ?bytes, ?tup);
        assert_eq!(
            p.signature().tags(),
            &[
                TypeTag::Int,
                TypeTag::Float,
                TypeTag::Bool,
                TypeTag::Char,
                TypeTag::Str,
                TypeTag::Bytes,
                TypeTag::Tuple
            ]
        );
        let t = tuple!(1, 2.0, true, 'c', "s", vec![1u8], vec![Value::Int(1)]);
        assert!(p.matches(&t));
    }
}

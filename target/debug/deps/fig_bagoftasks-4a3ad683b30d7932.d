/root/repo/target/debug/deps/fig_bagoftasks-4a3ad683b30d7932.d: crates/bench/benches/fig_bagoftasks.rs Cargo.toml

/root/repo/target/debug/deps/libfig_bagoftasks-4a3ad683b30d7932.rmeta: crates/bench/benches/fig_bagoftasks.rs Cargo.toml

crates/bench/benches/fig_bagoftasks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! E3 — end-to-end AGS latency: multicast ordering + state machine.
//!
//! §5.3 of the paper combines the Table 1/2 processing costs with
//! Consul's measured ~4.0 ms dissemination/ordering time (3 Sun-3
//! replicas, 10 Mb Ethernet) to estimate total AGS latency, concluding
//! that **ordering dominates**. We measure the full round trip —
//! `Runtime::execute` returning after the local replica applies the
//! ordered AGS — across simulated one-way link latencies, including a
//! 1.3 ms setting whose round trip approximates the paper's 4 ms
//! ordering figure.

use criterion::{criterion_group, criterion_main, Criterion};
use ftlinda::{Ags, Cluster, MatchField as MF, NetConfig, Operand, TypeTag};
use std::time::Duration;

fn counter_ags(ts: ftlinda::TsId) -> Ags {
    Ags::builder()
        .guard_in(ts, vec![MF::actual("count"), MF::bind(TypeTag::Int)])
        .out(ts, vec![Operand::cst("count"), Operand::formal(0).add(1)])
        .build()
        .unwrap()
}

fn bench(c: &mut Criterion) {
    println!("\nE3 — end-to-end AGS latency (3 replicas), by one-way link latency:");
    let mut g = c.benchmark_group("e2e_ags_latency");
    g.sample_size(10);
    for (label, lat_us) in [
        ("0us", 0u64),
        ("100us", 100),
        ("500us", 500),
        ("1300us", 1300),
    ] {
        let cfg = if lat_us == 0 {
            NetConfig::instant()
        } else {
            NetConfig::lan(Duration::from_micros(lat_us))
        };
        let (cluster, rts) = Cluster::builder().hosts(3).net(cfg).build();
        let ts = rts[0].create_stable_ts("main").unwrap();
        rts[0].out(ts, linda_tuple::tuple!("count", 0)).unwrap();
        let ags = counter_ags(ts);
        // Manual estimate for the printed table (non-coordinator host 1:
        // submit hop + ordered hop + apply).
        let reps = 50;
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            rts[1].execute(&ags).unwrap();
        }
        let per = t0.elapsed() / reps;
        linda_bench::print_row(
            &format!("one-way latency {label}"),
            format!("{:>10.1} µs/AGS", per.as_secs_f64() * 1e6),
        );
        g.measurement_time(Duration::from_secs(2));
        g.bench_function(format!("latency_{label}"), |b| {
            b.iter(|| rts[1].execute(&ags).unwrap())
        });
        cluster.shutdown();
    }
    g.finish();

    // Replica-count scaling at fixed latency (paper used 3 replicas).
    println!("\nE3b — AGS latency vs replica count (100 µs links):");
    let mut g = c.benchmark_group("e2e_replica_scaling");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for n in [1u32, 2, 3, 5, 7] {
        let (cluster, rts) = Cluster::builder()
            .hosts(n)
            .net(NetConfig::lan(Duration::from_micros(100)))
            .build();
        let ts = rts[0].create_stable_ts("main").unwrap();
        rts[0].out(ts, linda_tuple::tuple!("count", 0)).unwrap();
        let ags = counter_ags(ts);
        let client = &rts[(n as usize) - 1];
        let reps = 50;
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            client.execute(&ags).unwrap();
        }
        let per = t0.elapsed() / reps;
        linda_bench::print_row(
            &format!("{n} replicas"),
            format!("{:>10.1} µs/AGS", per.as_secs_f64() * 1e6),
        );
        g.bench_function(format!("replicas_{n}"), |b| {
            b.iter(|| client.execute(&ags).unwrap())
        });
        cluster.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

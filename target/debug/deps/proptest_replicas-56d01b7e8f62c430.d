/root/repo/target/debug/deps/proptest_replicas-56d01b7e8f62c430.d: tests/proptest_replicas.rs

/root/repo/target/debug/deps/proptest_replicas-56d01b7e8f62c430: tests/proptest_replicas.rs

tests/proptest_replicas.rs:

//! Causal tracing for the AGS pipeline.
//!
//! Every submitted AGS already carries a globally unique identity on the
//! wire: the `(origin host, local sequence)` pair that Consul uses for
//! duplicate suppression. [`TraceId`] is exactly that pair, so tracing
//! adds **zero bytes** to the wire format — each pipeline stage just
//! records a timestamped [`SpanRecord`] into its member-local
//! [`SpanLog`], and a cross-replica span tree is assembled after the
//! fact by collecting records for one id from every member's log
//! ([`TraceTree::assemble`]).
//!
//! The canonical stage vocabulary (in causal order):
//!
//! | stage      | where                            | meaning                              |
//! |------------|----------------------------------|--------------------------------------|
//! | `submit`   | origin runtime                   | AGS handed to the local Consul member|
//! | `flush`    | coordinator sequencer            | left the batch / solo broadcast      |
//! | `deliver`  | every member                     | appended to the ordered log          |
//! | `apply`    | every kernel                     | executed against stable TS state     |
//! | `block`    | every kernel                     | guard not satisfiable yet            |
//! | `wake`     | every kernel                     | blocked guard fired on a later AGS   |
//! | `complete` | origin runtime                   | completion routed to the waiter      |
//!
//! Cross-shard commits get their own stage vocabulary, recorded under a
//! **transaction trace id** derived from the commit's `xid` (already on
//! the wire in every XLock/XExec/XRelease record — see
//! [`TraceId::for_xid`]). Each span carries a `shard` field, so the
//! assembled tree splits into per-shard lanes
//! ([`TraceTree::shard_lane`]):
//!
//! | stage       | where                 | meaning                                   |
//! |-------------|-----------------------|-------------------------------------------|
//! | `xbegin`    | origin runtime        | one commit attempt started                |
//! | `xlock`     | every kernel          | shard frozen for this xid                 |
//! | `lock_wait` | every kernel          | a delivery queued behind a shard lock     |
//! | `xexec`     | every kernel          | AGS body ran at the home shard            |
//! | `xrelease`  | every kernel          | shard unfrozen, buffered traffic replayed |
//! | `xabort`    | kernel or origin      | attempt rolled back (`cause` field)       |
//! | `xcommit`   | origin runtime        | the transaction fired                     |
//!
//! Timestamps are microseconds since `UNIX_EPOCH`: wall-clock, so they
//! are comparable across members of the simulated cluster (one process)
//! and merely *approximately* comparable across real machines — which is
//! all latency attribution needs.

use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// The identity of one AGS as it flows through the pipeline: the origin
/// member's numeric host id plus the submit-order sequence the origin
/// assigned. Already carried by every `Record`/`BatchEntry` on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId {
    /// Numeric id of the submitting host.
    pub origin: u32,
    /// Origin-local submission sequence number.
    pub local: u64,
}

impl TraceId {
    /// Build a trace id from its two wire components.
    pub fn new(origin: u32, local: u64) -> Self {
        TraceId { origin, local }
    }

    /// The transaction trace id of one cross-shard commit attempt,
    /// derived from its `xid` — `(origin_host << 48) | attempt_counter`,
    /// already carried by every XLock/XExec/XRelease record, so tracing
    /// the commit adds **zero wire bytes**. Bit 63 of `local` marks the
    /// id as an xcommit trace: real broadcast local ids use per-shard
    /// bases of `shard << 48`, which never reach bit 63, so the derived
    /// ids cannot collide with ordinary AGS traces.
    pub fn for_xid(xid: u64) -> Self {
        TraceId {
            origin: (xid >> 48) as u32,
            local: (1u64 << 63) | (xid & 0x0000_ffff_ffff_ffff),
        }
    }

    /// Whether this id was derived from a cross-shard commit `xid`.
    pub fn is_xcommit(&self) -> bool {
        self.local >> 63 == 1
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.origin, self.local)
    }
}

/// Error parsing a [`TraceId`] from its `origin-local` text form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceIdError;

impl fmt::Display for ParseTraceIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace id must look like `<origin>-<local>`, e.g. `1-42`")
    }
}

impl std::error::Error for ParseTraceIdError {}

impl FromStr for TraceId {
    type Err = ParseTraceIdError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (o, l) = s.split_once('-').ok_or(ParseTraceIdError)?;
        Ok(TraceId {
            origin: o.trim().parse().map_err(|_| ParseTraceIdError)?,
            local: l.trim().parse().map_err(|_| ParseTraceIdError)?,
        })
    }
}

/// Microseconds since `UNIX_EPOCH`, the timestamp base for spans.
pub fn now_micros() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// One timestamped stage event for one AGS on one member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Which AGS this span belongs to.
    pub trace: TraceId,
    /// Stage name (see the module table for the canonical vocabulary).
    pub stage: String,
    /// Numeric id of the host that recorded the span.
    pub host: u32,
    /// Microseconds since `UNIX_EPOCH` at which the stage happened.
    pub at_micros: u64,
    /// Ordered key/value detail (e.g. `seq`, `batch`, `queued_us`).
    pub fields: Vec<(String, String)>,
}

impl SpanRecord {
    /// Value of the first field named `key`, if present.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Causal rank of a stage name; used only to break timestamp ties when
/// sorting an assembled tree. Unknown stages sort last.
fn stage_rank(stage: &str) -> u8 {
    match stage {
        "submit" => 0,
        "flush" => 1,
        "deliver" => 2,
        "apply" => 3,
        "block" => 4,
        "wake" => 5,
        "complete" => 6,
        // Cross-shard commit stages, causally after the ordinary
        // pipeline: an xcommit trace never mixes with AGS stages, but
        // ranking both vocabularies keeps ties deterministic anywhere.
        "xbegin" => 7,
        "xlock" => 8,
        "lock_wait" => 9,
        "xexec" => 10,
        "xrelease" => 11,
        "xabort" => 12,
        "xcommit" => 13,
        _ => 14,
    }
}

/// A bounded ring of recent [`SpanRecord`]s, one per member.
///
/// Like [`EventSink`](crate::EventSink) this never blocks the pipeline:
/// when full, the oldest span is dropped and a counter records the loss.
#[derive(Debug)]
pub struct SpanLog {
    buf: Mutex<VecDeque<SpanRecord>>,
    cap: usize,
    total: AtomicU64,
    dropped: AtomicU64,
    /// Timestamp of the newest span ever evicted: everything at or
    /// before this instant may be missing from the ring, so a trace
    /// whose spans start at or before it cannot be trusted complete.
    evicted_newest: AtomicU64,
}

impl Default for SpanLog {
    fn default() -> Self {
        Self::with_capacity(8192)
    }
}

impl SpanLog {
    /// A log retaining at most `cap` recent spans.
    pub fn with_capacity(cap: usize) -> Self {
        SpanLog {
            buf: Mutex::new(VecDeque::with_capacity(cap.min(64))),
            cap: cap.max(1),
            total: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            evicted_newest: AtomicU64::new(0),
        }
    }

    /// Record a span, stamping it with the current time.
    pub fn record(&self, trace: TraceId, stage: &str, host: u32, fields: Vec<(String, String)>) {
        self.push(SpanRecord {
            trace,
            stage: stage.to_string(),
            host,
            at_micros: now_micros(),
            fields,
        });
    }

    /// Record a pre-built span (for tests or replay).
    pub fn push(&self, span: SpanRecord) {
        self.total.fetch_add(1, Ordering::Relaxed);
        let mut buf = self.buf.lock().unwrap_or_else(|e| e.into_inner());
        if buf.len() == self.cap {
            if let Some(evicted) = buf.pop_front() {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                self.evicted_newest
                    .fetch_max(evicted.at_micros, Ordering::Relaxed);
            }
        }
        buf.push_back(span);
    }

    /// Copy of the retained spans, oldest first.
    pub fn recent(&self) -> Vec<SpanRecord> {
        self.buf
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Retained spans belonging to one trace, oldest first.
    pub fn spans_of(&self, trace: TraceId) -> Vec<SpanRecord> {
        self.buf
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter(|s| s.trace == trace)
            .cloned()
            .collect()
    }

    /// Total spans ever recorded (including dropped ones).
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Spans evicted from the ring because it was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Timestamp (µs since `UNIX_EPOCH`) of the newest span ever evicted,
    /// or `None` when nothing was ever dropped. Spans recorded at or
    /// before this instant may be missing from the ring.
    pub fn evicted_newest_micros(&self) -> Option<u64> {
        if self.dropped() == 0 {
            None
        } else {
            Some(self.evicted_newest.load(Ordering::Relaxed))
        }
    }
}

/// A cross-replica span tree for one AGS: every member's spans for one
/// [`TraceId`], merged and causally sorted.
#[derive(Debug, Clone)]
pub struct TraceTree {
    /// The AGS this tree describes.
    pub trace: TraceId,
    /// All collected spans, sorted by `(at_micros, stage rank, host)`.
    pub spans: Vec<SpanRecord>,
    /// Whether any contributing span ring may have aged out spans of this
    /// trace (see [`TraceTree::mark_truncation`]). A truncated tree is
    /// incomplete because of ring eviction, not because the pipeline
    /// failed to run a stage.
    pub truncated: bool,
    /// Hosts whose span logs could not be collected at all — a federated
    /// assembly marks every unreachable live member here
    /// ([`TraceTree::mark_host_truncated`]), so "this member's exporter
    /// was down" is distinguishable from "the pipeline skipped a stage".
    pub truncated_hosts: Vec<u32>,
}

impl TraceTree {
    /// Merge spans collected from any number of member logs into one
    /// causally sorted tree. Spans for other traces are ignored.
    pub fn assemble<I: IntoIterator<Item = SpanRecord>>(trace: TraceId, spans: I) -> Self {
        let mut spans: Vec<SpanRecord> = spans.into_iter().filter(|s| s.trace == trace).collect();
        spans.sort_by(|a, b| {
            (a.at_micros, stage_rank(&a.stage), a.host).cmp(&(
                b.at_micros,
                stage_rank(&b.stage),
                b.host,
            ))
        });
        TraceTree {
            trace,
            spans,
            truncated: false,
            truncated_hosts: Vec::new(),
        }
    }

    /// Record that `host`'s span log could not be collected (e.g. its
    /// exporter was unreachable during a federated assembly). The tree is
    /// marked truncated and the host appears in `truncated_hosts`.
    pub fn mark_host_truncated(&mut self, host: u32) {
        self.truncated = true;
        if !self.truncated_hosts.contains(&host) {
            self.truncated_hosts.push(host);
            self.truncated_hosts.sort_unstable();
        }
    }

    /// Mark the tree truncated when any contributing [`SpanLog`]'s
    /// evictions could have eaten spans of this trace. `logs` yields each
    /// log's [`SpanLog::evicted_newest_micros`]. The tree is truncated if
    /// some log evicted spans and either (a) this tree is empty — the
    /// trace may have existed and aged out entirely — or (b) the eviction
    /// horizon reaches this tree's earliest retained span.
    pub fn mark_truncation<I: IntoIterator<Item = Option<u64>>>(&mut self, logs: I) {
        let earliest = self.spans.first().map(|s| s.at_micros);
        for horizon in logs.into_iter().flatten() {
            match earliest {
                None => {
                    self.truncated = true;
                    return;
                }
                Some(at) if horizon >= at => {
                    self.truncated = true;
                    return;
                }
                Some(_) => {}
            }
        }
    }

    /// Hosts that recorded the given stage.
    pub fn hosts_with(&self, stage: &str) -> Vec<u32> {
        let mut hosts: Vec<u32> = self
            .spans
            .iter()
            .filter(|s| s.stage == stage)
            .map(|s| s.host)
            .collect();
        hosts.sort_unstable();
        hosts.dedup();
        hosts
    }

    /// Whether `host` recorded `stage`.
    pub fn has(&self, stage: &str, host: u32) -> bool {
        self.spans
            .iter()
            .any(|s| s.stage == stage && s.host == host)
    }

    /// Whether the tree forms a complete chain: `submit` on the origin,
    /// `flush` at the (coordinator) sequencer, `deliver` + `apply` on
    /// every host in `hosts`, and — if the AGS ever blocked — a matching
    /// `wake` on each host that recorded the `block`.
    pub fn is_complete(&self, hosts: &[u32]) -> bool {
        if !self.has("submit", self.trace.origin) {
            return false;
        }
        if self.hosts_with("flush").is_empty() {
            return false;
        }
        for &h in hosts {
            if !self.has("deliver", h) || !self.has("apply", h) {
                return false;
            }
            if self.has("block", h) && !self.has("wake", h) {
                return false;
            }
        }
        true
    }

    /// First timestamp of `stage` anywhere in the tree, if recorded.
    pub fn first_at(&self, stage: &str) -> Option<u64> {
        self.spans
            .iter()
            .filter(|s| s.stage == stage)
            .map(|s| s.at_micros)
            .min()
    }

    /// Microseconds between the first occurrences of two stages, when
    /// both are present and in order. The per-stage latency attribution
    /// the experiments consume: e.g. `between("submit", "flush")` is the
    /// batch queueing delay seen by this AGS.
    pub fn between(&self, from: &str, to: &str) -> Option<u64> {
        let a = self.first_at(from)?;
        let b = self.first_at(to)?;
        b.checked_sub(a)
    }

    /// Shards that recorded any span (distinct numeric `shard` field
    /// values), ascending. Empty for ordinary single-shard AGS traces
    /// whose spans carry no `shard` field.
    pub fn shards(&self) -> Vec<u32> {
        let mut shards: Vec<u32> = self
            .spans
            .iter()
            .filter_map(|s| s.field("shard").and_then(|v| v.parse().ok()))
            .collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }

    /// The per-shard lane of a cross-shard commit trace: every span
    /// whose `shard` field equals `shard`, in tree (causal) order.
    pub fn shard_lane(&self, shard: u32) -> Vec<&SpanRecord> {
        let want = shard.to_string();
        self.spans
            .iter()
            .filter(|s| s.field("shard") == Some(want.as_str()))
            .collect()
    }

    /// First timestamp of `stage` on the `shard` lane, if recorded.
    pub fn first_at_on_shard(&self, stage: &str, shard: u32) -> Option<u64> {
        let want = shard.to_string();
        self.spans
            .iter()
            .filter(|s| s.stage == stage && s.field("shard") == Some(want.as_str()))
            .map(|s| s.at_micros)
            .min()
    }

    /// Microseconds between the first occurrences of two stages on one
    /// shard lane — per-shard latency attribution for cross-shard
    /// commits: e.g. `between_on_shard("xlock", "xrelease", s)` is how
    /// long shard `s` stayed frozen for this transaction.
    pub fn between_on_shard(&self, from: &str, to: &str, shard: u32) -> Option<u64> {
        let a = self.first_at_on_shard(from, shard)?;
        let b = self.first_at_on_shard(to, shard)?;
        b.checked_sub(a)
    }

    /// Render the tree as a JSON object (hand-rolled; the build has no
    /// serde): `{"trace":"1-7","complete_hosts":[...],"spans":[...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.spans.len() * 96);
        out.push_str("{\"trace\":\"");
        out.push_str(&self.trace.to_string());
        out.push_str("\",\"span_count\":");
        out.push_str(&self.spans.len().to_string());
        out.push_str(",\"truncated\":");
        out.push_str(if self.truncated { "true" } else { "false" });
        out.push_str(",\"truncated_hosts\":[");
        for (i, h) in self.truncated_hosts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&h.to_string());
        }
        out.push_str("],\"shards\":[");
        for (i, s) in self.shards().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_string());
        }
        out.push_str("],\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&span_json(s));
        }
        out.push_str("]}");
        out
    }
}

/// Render one span as a JSON object.
pub fn span_json(s: &SpanRecord) -> String {
    let mut out = String::with_capacity(96);
    out.push_str("{\"stage\":\"");
    out.push_str(&json_escape(&s.stage));
    out.push_str("\",\"host\":");
    out.push_str(&s.host.to_string());
    out.push_str(",\"trace\":\"");
    out.push_str(&s.trace.to_string());
    out.push_str("\",\"at_us\":");
    out.push_str(&s.at_micros.to_string());
    out.push_str(",\"fields\":{");
    for (i, (k, v)) in s.fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&json_escape(k));
        out.push_str("\":\"");
        out.push_str(&json_escape(v));
        out.push('"');
    }
    out.push_str("}}");
    out
}

/// Escape a string for one field of the tab-separated wire formats
/// (span shipping and registry-snapshot federation): `\` → `\\`,
/// tab → `\t`, newline → `\n`, CR → `\r`.
pub fn wire_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`wire_escape`]. Unknown escapes pass the escaped
/// character through; a trailing lone `\` is dropped.
pub fn wire_unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(c) => out.push(c),
            None => {}
        }
    }
    out
}

/// Serialize spans plus the owning log's eviction horizon as the
/// tab-separated span wire format — the payload a member's `/spans/<id>`
/// endpoint serves so a federated assembler can merge remote spans
/// without a JSON parser. Line 1 is the header
/// `ftlspans <version> <horizon µs | ->`; each further line is one span:
/// `origin <TAB> local <TAB> stage <TAB> host <TAB> at_us
/// [<TAB> key <TAB> value]…` with every string field [`wire_escape`]d.
pub fn spans_wire(spans: &[SpanRecord], horizon: Option<u64>) -> String {
    let mut out = String::with_capacity(32 + spans.len() * 96);
    out.push_str("ftlspans\t1\t");
    match horizon {
        Some(h) => out.push_str(&h.to_string()),
        None => out.push('-'),
    }
    out.push('\n');
    for s in spans {
        out.push_str(&s.trace.origin.to_string());
        out.push('\t');
        out.push_str(&s.trace.local.to_string());
        out.push('\t');
        out.push_str(&wire_escape(&s.stage));
        out.push('\t');
        out.push_str(&s.host.to_string());
        out.push('\t');
        out.push_str(&s.at_micros.to_string());
        for (k, v) in &s.fields {
            out.push('\t');
            out.push_str(&wire_escape(k));
            out.push('\t');
            out.push_str(&wire_escape(v));
        }
        out.push('\n');
    }
    out
}

/// Parse the span wire format produced by [`spans_wire`]. Returns the
/// spans and the sending log's eviction horizon. Structured errors, no
/// panics — the input crossed a process boundary.
pub fn parse_spans_wire(text: &str) -> Result<(Vec<SpanRecord>, Option<u64>), String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty span wire payload")?;
    let mut hp = header.split('\t');
    if hp.next() != Some("ftlspans") {
        return Err("missing ftlspans header".into());
    }
    if hp.next() != Some("1") {
        return Err("unsupported span wire version".into());
    }
    let horizon = match hp.next() {
        Some("-") => None,
        Some(h) => Some(h.parse::<u64>().map_err(|e| format!("bad horizon: {e}"))?),
        None => return Err("truncated ftlspans header".into()),
    };
    let mut spans = Vec::new();
    for (ln, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split('\t').collect();
        if parts.len() < 5 || !(parts.len() - 5).is_multiple_of(2) {
            return Err(format!("span line {}: wrong field count", ln + 2));
        }
        let parse_u64 = |s: &str, what: &str| -> Result<u64, String> {
            s.parse::<u64>()
                .map_err(|e| format!("span line {}: bad {what}: {e}", ln + 2))
        };
        let origin = u32::try_from(parse_u64(parts[0], "origin")?)
            .map_err(|_| format!("span line {}: origin overflow", ln + 2))?;
        let local = parse_u64(parts[1], "local")?;
        let host = u32::try_from(parse_u64(parts[3], "host")?)
            .map_err(|_| format!("span line {}: host overflow", ln + 2))?;
        let at_micros = parse_u64(parts[4], "at_us")?;
        let fields = parts[5..]
            .chunks(2)
            .map(|kv| (wire_unescape(kv[0]), wire_unescape(kv[1])))
            .collect();
        spans.push(SpanRecord {
            trace: TraceId::new(origin, local),
            stage: wire_unescape(parts[2]),
            host,
            at_micros,
            fields,
        });
    }
    Ok((spans, horizon))
}

/// Escape a string for embedding inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: TraceId, stage: &str, host: u32, at: u64) -> SpanRecord {
        SpanRecord {
            trace,
            stage: stage.into(),
            host,
            at_micros: at,
            fields: vec![],
        }
    }

    #[test]
    fn trace_id_roundtrip() {
        let id = TraceId::new(3, 17);
        assert_eq!(id.to_string(), "3-17");
        assert_eq!("3-17".parse::<TraceId>().unwrap(), id);
        assert!("nonsense".parse::<TraceId>().is_err());
        assert!("1-".parse::<TraceId>().is_err());
        assert!("-2".parse::<TraceId>().is_err());
    }

    #[test]
    fn span_log_ring_and_drop_counter() {
        let log = SpanLog::with_capacity(2);
        let id = TraceId::new(0, 1);
        for i in 0..3 {
            log.push(span(id, "apply", i, i as u64));
        }
        assert_eq!(log.total(), 3);
        assert_eq!(log.dropped(), 1);
        let recent = log.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].host, 1, "oldest evicted");
        assert_eq!(log.spans_of(id).len(), 2);
        assert_eq!(log.spans_of(TraceId::new(9, 9)).len(), 0);
    }

    #[test]
    fn tree_assembly_sorts_and_checks_completeness() {
        let id = TraceId::new(1, 5);
        let spans = vec![
            span(id, "apply", 0, 40),
            span(id, "deliver", 0, 30),
            span(id, "submit", 1, 10),
            span(id, "flush", 0, 20),
            span(id, "deliver", 1, 30),
            span(id, "apply", 1, 40),
            // Same-timestamp tie broken by causal stage rank.
            span(TraceId::new(2, 2), "apply", 0, 1), // other trace: ignored
        ];
        let tree = TraceTree::assemble(id, spans);
        assert_eq!(tree.spans.len(), 6);
        assert_eq!(tree.spans[0].stage, "submit");
        assert!(tree.is_complete(&[0, 1]));
        assert!(!tree.is_complete(&[0, 1, 2]), "host 2 never applied");
        assert_eq!(tree.between("submit", "flush"), Some(10));
        assert_eq!(tree.between("flush", "apply"), Some(20));
        assert_eq!(tree.hosts_with("apply"), vec![0, 1]);
    }

    #[test]
    fn blocked_without_wake_is_incomplete() {
        let id = TraceId::new(0, 1);
        let mut spans = vec![
            span(id, "submit", 0, 1),
            span(id, "flush", 0, 2),
            span(id, "deliver", 0, 3),
            span(id, "apply", 0, 4),
            span(id, "block", 0, 4),
        ];
        let tree = TraceTree::assemble(id, spans.clone());
        assert!(!tree.is_complete(&[0]), "blocked but never woke");
        spans.push(span(id, "wake", 0, 9));
        assert!(TraceTree::assemble(id, spans).is_complete(&[0]));
    }

    #[test]
    fn eviction_horizon_tracks_newest_dropped_span() {
        let log = SpanLog::with_capacity(2);
        let id = TraceId::new(0, 1);
        assert_eq!(log.evicted_newest_micros(), None);
        log.push(span(id, "submit", 0, 10));
        log.push(span(id, "flush", 0, 20));
        assert_eq!(log.evicted_newest_micros(), None, "nothing evicted yet");
        log.push(span(id, "deliver", 0, 30)); // evicts the t=10 span
        assert_eq!(log.evicted_newest_micros(), Some(10));
        log.push(span(id, "apply", 0, 40)); // evicts the t=20 span
        assert_eq!(log.evicted_newest_micros(), Some(20));
    }

    #[test]
    fn truncation_marking_rules() {
        let id = TraceId::new(0, 7);
        // No evictions anywhere → not truncated.
        let mut tree = TraceTree::assemble(id, vec![span(id, "apply", 0, 100)]);
        tree.mark_truncation(vec![None, None]);
        assert!(!tree.truncated);
        // Horizon strictly before our earliest span → still intact.
        let mut tree = TraceTree::assemble(id, vec![span(id, "apply", 0, 100)]);
        tree.mark_truncation(vec![Some(99)]);
        assert!(!tree.truncated);
        // Horizon reaching our earliest span → spans may be missing.
        let mut tree = TraceTree::assemble(id, vec![span(id, "apply", 0, 100)]);
        tree.mark_truncation(vec![Some(100)]);
        assert!(tree.truncated);
        // Empty tree + any eviction → can't tell unknown from aged-out.
        let mut tree = TraceTree::assemble(id, vec![]);
        tree.mark_truncation(vec![None, Some(5)]);
        assert!(tree.truncated);
        assert!(tree.to_json().contains("\"truncated\":true"));
    }

    fn shard_span(trace: TraceId, stage: &str, host: u32, at: u64, shard: u32) -> SpanRecord {
        let mut s = span(trace, stage, host, at);
        s.fields.push(("shard".into(), shard.to_string()));
        s
    }

    #[test]
    fn xid_trace_ids_never_collide_with_broadcast_ids() {
        let xid = (7u64 << 48) | 42;
        let id = TraceId::for_xid(xid);
        assert_eq!(id.origin, 7);
        assert_eq!(id.local, (1 << 63) | 42);
        assert!(id.is_xcommit());
        // Round-trips through the text form served by /trace/<id>.
        assert_eq!(id.to_string().parse::<TraceId>().unwrap(), id);
        // Ordinary broadcast local ids (per-shard base = shard << 48,
        // shard < 2^15) never set bit 63.
        let broadcast = TraceId::new(7, (3u64 << 48) | 42);
        assert!(!broadcast.is_xcommit());
        assert_ne!(id, broadcast);
    }

    #[test]
    fn shard_lanes_split_a_cross_shard_trace() {
        let id = TraceId::for_xid(2 << 48);
        let spans = vec![
            span(id, "xbegin", 2, 5), // origin span: no shard lane
            shard_span(id, "xlock", 0, 10, 0),
            shard_span(id, "xlock", 0, 20, 1),
            shard_span(id, "xexec", 1, 30, 0),
            shard_span(id, "xrelease", 0, 40, 0),
            shard_span(id, "xrelease", 1, 55, 1),
            span(id, "xcommit", 2, 60),
        ];
        let tree = TraceTree::assemble(id, spans);
        assert_eq!(tree.shards(), vec![0, 1]);
        let lane0: Vec<&str> = tree
            .shard_lane(0)
            .iter()
            .map(|s| s.stage.as_str())
            .collect();
        assert_eq!(lane0, vec!["xlock", "xexec", "xrelease"]);
        assert_eq!(tree.shard_lane(1).len(), 2);
        assert!(tree.shard_lane(9).is_empty());
        assert_eq!(tree.first_at_on_shard("xlock", 1), Some(20));
        assert_eq!(tree.between_on_shard("xlock", "xrelease", 0), Some(30));
        assert_eq!(tree.between_on_shard("xlock", "xrelease", 1), Some(35));
        assert_eq!(tree.between_on_shard("xlock", "xexec", 1), None);
        let j = tree.to_json();
        assert!(j.contains("\"shards\":[0,1]"));
    }

    #[test]
    fn xcommit_stage_ranks_break_timestamp_ties() {
        let id = TraceId::for_xid(0);
        let spans = vec![
            shard_span(id, "xrelease", 0, 7, 0),
            shard_span(id, "xexec", 0, 7, 0),
            shard_span(id, "xlock", 0, 7, 0),
            span(id, "xbegin", 0, 7),
        ];
        let tree = TraceTree::assemble(id, spans);
        let order: Vec<&str> = tree.spans.iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(order, vec!["xbegin", "xlock", "xexec", "xrelease"]);
    }

    #[test]
    fn host_truncation_is_listed_and_rendered() {
        let id = TraceId::for_xid(1 << 48);
        let mut tree = TraceTree::assemble(id, vec![span(id, "xbegin", 1, 5)]);
        assert!(!tree.truncated);
        assert!(tree.to_json().contains("\"truncated_hosts\":[]"));
        tree.mark_host_truncated(2);
        tree.mark_host_truncated(0);
        tree.mark_host_truncated(2); // idempotent
        assert!(tree.truncated);
        assert_eq!(tree.truncated_hosts, vec![0, 2]);
        assert!(tree.to_json().contains("\"truncated\":true"));
        assert!(tree.to_json().contains("\"truncated_hosts\":[0,2]"));
    }

    #[test]
    fn span_wire_roundtrip() {
        let id = TraceId::for_xid((3u64 << 48) | 9);
        let mut s1 = span(id, "xlock", 1, 100);
        s1.fields.push(("shard".into(), "0".into()));
        s1.fields
            .push(("note".into(), "tab\there\nand\\slash".into()));
        let s2 = span(id, "xcommit", 3, 200);
        let text = spans_wire(&[s1.clone(), s2.clone()], Some(42));
        let (back, horizon) = parse_spans_wire(&text).expect("parse");
        assert_eq!(horizon, Some(42));
        assert_eq!(back, vec![s1, s2]);
        // No horizon → `-` marker.
        let text = spans_wire(&[], None);
        let (back, horizon) = parse_spans_wire(&text).expect("parse empty");
        assert!(back.is_empty());
        assert_eq!(horizon, None);
    }

    #[test]
    fn span_wire_rejects_malformed_input() {
        assert!(parse_spans_wire("").is_err());
        assert!(parse_spans_wire("nonsense\t1\t-").is_err());
        assert!(parse_spans_wire("ftlspans\t9\t-").is_err(), "bad version");
        assert!(parse_spans_wire("ftlspans\t1\tnotanum").is_err());
        // Wrong field count and non-numeric fields error, never panic.
        assert!(parse_spans_wire("ftlspans\t1\t-\n1\t2\tstage").is_err());
        assert!(parse_spans_wire("ftlspans\t1\t-\n1\t2\tstage\t0\t5\tk").is_err());
        assert!(parse_spans_wire("ftlspans\t1\t-\nx\t2\tstage\t0\t5").is_err());
    }

    #[test]
    fn wire_escape_roundtrip() {
        for s in ["plain", "with\ttab", "with\nnewline", "back\\slash", "\r"] {
            assert_eq!(wire_unescape(&wire_escape(s)), s);
            let escaped = wire_escape(s);
            assert!(!escaped.contains('\t') && !escaped.contains('\n'));
        }
    }

    #[test]
    fn json_rendering_escapes() {
        let mut s = span(TraceId::new(0, 1), "apply", 2, 7);
        s.fields.push(("note".into(), "a\"b\\c\nd".into()));
        let j = span_json(&s);
        assert!(j.contains("\"stage\":\"apply\""));
        assert!(j.contains("\"host\":2"));
        assert!(j.contains("\"at_us\":7"));
        assert!(j.contains("a\\\"b\\\\c\\nd"));
        let tree = TraceTree::assemble(TraceId::new(0, 1), vec![s]);
        let tj = tree.to_json();
        assert!(tj.starts_with("{\"trace\":\"0-1\""));
        assert!(tj.contains("\"span_count\":1"));
    }
}

/root/repo/target/debug/deps/linda_bench-7600f9c930630ea2.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/linda_bench-7600f9c930630ea2: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

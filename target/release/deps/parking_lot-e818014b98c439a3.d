/root/repo/target/release/deps/parking_lot-e818014b98c439a3.d: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-e818014b98c439a3.rlib: vendor/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-e818014b98c439a3.rmeta: vendor/parking_lot/src/lib.rs

vendor/parking_lot/src/lib.rs:

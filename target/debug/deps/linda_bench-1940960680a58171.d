/root/repo/target/debug/deps/linda_bench-1940960680a58171.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liblinda_bench-1940960680a58171.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/liblinda_bench-1940960680a58171.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:

/root/repo/target/debug/examples/bag_of_tasks-a4cf789847ee25ec.d: examples/bag_of_tasks.rs Cargo.toml

/root/repo/target/debug/examples/libbag_of_tasks-a4cf789847ee25ec.rmeta: examples/bag_of_tasks.rs Cargo.toml

examples/bag_of_tasks.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! Shard sweep — write throughput vs shard count K, the tentpole claim
//! of the sharded-stable-spaces design: signature-partitioned spaces
//! multiply single-shard write throughput beyond what one total order
//! can carry.
//!
//! The unsharded protocol bottlenecks on the sequencer coordinator: one
//! process pays the NIC fan-out for *every* ordered multicast. We model
//! that resource with the simulator's per-host NIC service-time model
//! (`NicModel::ethernet_10mb`, the paper's 10 Mb Ethernet testbed) and
//! sweep K ∈ {1, 2, 4} with group commit off (window = 0): every AGS
//! pays full fan-out, so the sweep isolates what sharding alone buys.
//! Eight submitters each hammer a *distinct* signature, chosen so the
//! signatures spread evenly across shards (2 per shard at K=4, and —
//! because `shard_of` at K=2 is the K=4 owner mod 2 — 4 per shard at
//! K=2); every AGS routes to exactly one shard and the K sequencer
//! streams proceed independently.
//!
//! The run also prices the cross-shard path: an AGS spanning S shards
//! costs 2·S + 1 ordered multicasts (S locks, 1 exec, S releases) vs 1
//! for a single-shard AGS — the reason the router keeps statically
//! single-shard AGSs on the fast path.
//!
//! Results land in the `shard_sweep` section of
//! `BENCH_msgs_per_ags.json` (`$BENCH_MSGS_PER_AGS_JSON`), next to the
//! K=1 window-sweep points written by `batch_window`. The K=4 / K=1
//! speedup is asserted ≥ `$SHARD_SWEEP_MIN_SPEEDUP` (default 2).

use consul_sim::{NetConfig, NicModel};
use criterion::{criterion_group, criterion_main, Criterion};
use ftlinda::{Ags, Cluster, MatchField, Operand, TsId, TypeTag};
use ftlinda_ags::shard_of;
use linda_tuple::Signature;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const HOSTS: u32 = 3;
const SUBMITTERS: usize = 8;
const PER_SUBMITTER: usize = 100;
const MAX_K: u32 = 4;

/// Eight `[Str, Int × arity]` signatures spreading evenly over `MAX_K`
/// shards (two signatures per shard), found by scanning arities. The
/// returned list is `(arity, owner shard at MAX_K)`.
fn balanced_arities(ts: TsId) -> Vec<(usize, u32)> {
    let mut per_shard = vec![0usize; MAX_K as usize];
    let mut picks = Vec::with_capacity(SUBMITTERS);
    let want = SUBMITTERS / MAX_K as usize;
    for arity in 1usize..256 {
        let mut tags = vec![TypeTag::Str];
        tags.extend(std::iter::repeat_n(TypeTag::Int, arity));
        let owner = shard_of(ts, Signature::new(tags).stable_hash(), MAX_K);
        if per_shard[owner as usize] < want {
            per_shard[owner as usize] += 1;
            picks.push((arity, owner));
            if picks.len() == SUBMITTERS {
                return picks;
            }
        }
    }
    panic!("could not balance {SUBMITTERS} signatures over {MAX_K} shards");
}

fn out_ags(ts: TsId, arity: usize, k: i64) -> Ags {
    let mut fields = vec![Operand::cst("s")];
    fields.extend((0..arity).map(|_| Operand::cst(k)));
    Ags::out_one(ts, fields)
}

struct Point {
    shards: u32,
    ags: u64,
    multicasts: u64,
    /// Ordered multicasts carried by each shard's sequencer stream.
    per_shard: Vec<u64>,
    /// Load imbalance across those streams, in basis points (0 =
    /// perfectly even, 10000 = everything on one shard).
    imbalance_bp: i64,
    ags_per_sec: f64,
}

fn sweep_cluster(shards: u32) -> (Cluster, Vec<ftlinda::Runtime>, TsId) {
    let net = NetConfig {
        nic: Some(NicModel::ethernet_10mb()),
        ..NetConfig::default()
    };
    let (cluster, rts) = Cluster::builder()
        .hosts(HOSTS)
        .shards(shards)
        .no_checkpoints()
        .no_batching()
        .net(net)
        .build();
    let ts = rts[0].create_stable_ts("main").unwrap();
    (cluster, rts, ts)
}

fn run_shards(shards: u32, arities: &[(usize, u32)]) -> Point {
    let (cluster, rts, ts) = sweep_cluster(shards);
    // Exclude setup traffic (CreateTs + RegisterTs) from the counts.
    for s in 0..cluster.shard_count() {
        cluster.order_stats_shard(s).reset();
    }
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for (i, (arity, _)) in arities.iter().enumerate() {
            let rt = &rts[i % rts.len()];
            let arity = *arity;
            s.spawn(move || {
                for k in 0..PER_SUBMITTER {
                    rt.execute(&out_ags(ts, arity, k as i64)).unwrap();
                }
            });
        }
    });
    let secs = t0.elapsed().as_secs_f64();
    let per_shard: Vec<u64> = (0..cluster.shard_count())
        .map(|s| cluster.order_stats_shard(s).ordered_multicasts())
        .collect();
    let multicasts: u64 = per_shard.iter().sum();
    let ags = (SUBMITTERS * PER_SUBMITTER) as u64;
    let point = Point {
        shards,
        ags,
        multicasts,
        imbalance_bp: ftlinda_ags::imbalance_bp(&per_shard),
        per_shard,
        ags_per_sec: ags as f64 / secs,
    };
    cluster.shutdown();
    point
}

/// Ordered multicasts for one cross-shard AGS spanning two shards:
/// 2 locks + 1 exec + 2 releases = 5 (vs 1 for a single-shard AGS).
fn cross_shard_cost() -> u64 {
    let net = NetConfig::default(); // no NIC model: measuring counts
    let (cluster, rts) = Cluster::builder()
        .hosts(HOSTS)
        .shards(2)
        .no_checkpoints()
        .no_batching()
        .net(net)
        .build();
    let ts = rts[0].create_stable_ts("main").unwrap();
    rts[0].out(ts, linda_tuple::tuple!("x", 1)).unwrap();
    let before: u64 = (0..2)
        .map(|s| cluster.order_stats_shard(s).ordered_multicasts())
        .sum();
    let ags = Ags::builder()
        .guard_in(
            ts,
            vec![MatchField::actual("x"), MatchField::bind(TypeTag::Int)],
        )
        .out(ts, vec![Operand::cst("y"), Operand::cst("done")])
        .build()
        .unwrap();
    rts[0].execute(&ags).unwrap();
    let after: u64 = (0..2)
        .map(|s| cluster.order_stats_shard(s).ordered_multicasts())
        .sum();
    cluster.shutdown();
    after - before
}

fn write_artifact(points: &[Point], speedup: f64) {
    let mut json = String::from("{\n");
    let _ = writeln!(
        json,
        "    \"hosts\": {HOSTS}, \"submitters\": {SUBMITTERS}, \
         \"window_us\": 0, \"nic\": \"ethernet_10mb\",\n    \"points\": ["
    );
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "      {{\"shards\": {}, \"ags\": {}, \"ordered_multicasts\": {}, \
             \"ags_per_sec\": {:.1}}}{comma}",
            p.shards, p.ags, p.multicasts, p.ags_per_sec,
        );
    }
    let _ = write!(json, "    ],\n    \"speedup_k4_vs_k1\": {speedup:.2}\n  }}");
    let path = std::env::var("BENCH_MSGS_PER_AGS_JSON")
        .unwrap_or_else(|_| "BENCH_msgs_per_ags.json".into());
    linda_bench::update_artifact_sections(&path, &[("shard_sweep", json)]);
}

/// Per-shard load census of the sweep: how evenly each K spread the
/// ordered-multicast traffic over its sequencer streams, with the same
/// basis-point imbalance gauge the cluster exports at runtime.
fn write_balance_artifact(points: &[Point]) {
    let mut json = String::from("{\n    \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let loads = p
            .per_shard
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            json,
            "      {{\"shards\": {}, \"per_shard_multicasts\": [{loads}], \
             \"imbalance_bp\": {}}}{comma}",
            p.shards, p.imbalance_bp,
        );
    }
    let _ = write!(json, "    ]\n  }}");
    let path = std::env::var("BENCH_SHARD_BALANCE_JSON")
        .unwrap_or_else(|_| "BENCH_shard_balance.json".into());
    linda_bench::update_artifact_sections(&path, &[("shard_balance", json)]);
}

fn bench(c: &mut Criterion) {
    // Pin the signature set once; space ids are deterministic, so the
    // first created space is the same id in every cluster below.
    let probe = {
        let (cluster, rts, ts) = sweep_cluster(1);
        let picks = balanced_arities(ts);
        cluster.shutdown();
        drop(rts);
        picks
    };

    println!(
        "\nShard sweep — {SUBMITTERS} submitters on distinct signatures, \
         {HOSTS} hosts, window off, 10 Mb-Ethernet NIC model:"
    );
    println!(
        "    {:<8} {:>8} {:>12} {:>12} {:>10} {:>12}",
        "shards", "AGSs", "multicasts", "AGS/sec", "speedup", "imbalance"
    );
    let mut points = Vec::new();
    for shards in [1u32, 2, 4] {
        let p = run_shards(shards, &probe);
        // Window off: every AGS is exactly one ordered multicast, on
        // whichever shard owns its signature.
        assert_eq!(p.multicasts, p.ags, "one ordered multicast per AGS");
        let speedup = p.ags_per_sec
            / points
                .first()
                .map_or(p.ags_per_sec, |b: &Point| b.ags_per_sec);
        println!(
            "    {:<8} {:>8} {:>12} {:>12.0} {:>9.2}x {:>9} bp",
            p.shards, p.ags, p.multicasts, p.ags_per_sec, speedup, p.imbalance_bp
        );
        points.push(p);
    }
    let speedup = points[2].ags_per_sec / points[0].ags_per_sec;
    let min_speedup: f64 = std::env::var("SHARD_SWEEP_MIN_SPEEDUP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2.0);
    assert!(
        speedup >= min_speedup,
        "K=4 must beat K=1 by ≥{min_speedup}x on single-shard writes, got {speedup:.2}x"
    );

    let xcost = cross_shard_cost();
    println!("    cross-shard AGS spanning 2 shards: {xcost} ordered multicasts (2S+1)");
    assert_eq!(xcost, 5, "lock×2 + exec + release×2");
    println!();
    write_artifact(&points, speedup);
    write_balance_artifact(&points);

    // Criterion angle: one contended 8-submitter burst, K=1 vs K=4.
    let mut g = c.benchmark_group("shard_sweep");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for shards in [1u32, 4] {
        let (cluster, rts, ts) = sweep_cluster(shards);
        g.bench_function(format!("burst8_k{shards}"), |b| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for (i, (arity, _)) in probe.iter().enumerate() {
                        let rt = &rts[i % rts.len()];
                        let arity = *arity;
                        s.spawn(move || {
                            rt.execute(&out_ags(ts, arity, 1)).unwrap();
                        });
                    }
                });
            })
        });
        cluster.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

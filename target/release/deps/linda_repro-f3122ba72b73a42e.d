/root/repo/target/release/deps/linda_repro-f3122ba72b73a42e.d: src/lib.rs

/root/repo/target/release/deps/liblinda_repro-f3122ba72b73a42e.rlib: src/lib.rs

/root/repo/target/release/deps/liblinda_repro-f3122ba72b73a42e.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/linda_bench-f56f3738199ce211.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblinda_bench-f56f3738199ce211.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

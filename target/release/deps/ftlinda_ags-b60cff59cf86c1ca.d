/root/repo/target/release/deps/ftlinda_ags-b60cff59cf86c1ca.d: crates/ags/src/lib.rs crates/ags/src/ags.rs crates/ags/src/expr.rs crates/ags/src/ops.rs crates/ags/src/wire.rs

/root/repo/target/release/deps/libftlinda_ags-b60cff59cf86c1ca.rlib: crates/ags/src/lib.rs crates/ags/src/ags.rs crates/ags/src/expr.rs crates/ags/src/ops.rs crates/ags/src/wire.rs

/root/repo/target/release/deps/libftlinda_ags-b60cff59cf86c1ca.rmeta: crates/ags/src/lib.rs crates/ags/src/ags.rs crates/ags/src/expr.rs crates/ags/src/ops.rs crates/ags/src/wire.rs

crates/ags/src/lib.rs:
crates/ags/src/ags.rs:
crates/ags/src/expr.rs:
crates/ags/src/ops.rs:
crates/ags/src/wire.rs:

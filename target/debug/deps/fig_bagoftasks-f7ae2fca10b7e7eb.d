/root/repo/target/debug/deps/fig_bagoftasks-f7ae2fca10b7e7eb.d: crates/bench/benches/fig_bagoftasks.rs

/root/repo/target/debug/deps/fig_bagoftasks-f7ae2fca10b7e7eb: crates/bench/benches/fig_bagoftasks.rs

crates/bench/benches/fig_bagoftasks.rs:

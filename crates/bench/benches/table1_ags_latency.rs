//! E1 / Table 1 — latency of AGS processing by the TS state machine.
//!
//! The paper's Table 1 (Sun-3) reports the base cost of processing a null
//! AGS plus the *marginal* cost of including different types of `in` and
//! `out` operations in the body. We reproduce the same rows on one
//! kernel: decode + execute of the ordered request, exactly the work the
//! paper's state machine performs per AGS. The printed table gives the
//! paper-style summary; the Criterion groups give rigorous statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use ftlinda_ags::{Ags, MatchField as MF, Operand, TsId};
use ftlinda_kernel::{Kernel, Request};
use linda_bench::*;
use linda_tuple::TypeTag;
use std::time::{Duration, Instant};

/// Kernel preloaded with steady-state tuples for the in/out workloads.
fn base_kernel() -> (Kernel, u64) {
    seeded_kernel(|k, seq| {
        for fields in [0usize, 2, 4, 6] {
            apply_request(k, seq, &Request::Ags(out_ags(fields)));
        }
    })
}

fn rows() -> Vec<(&'static str, Ags)> {
    let inp_absent = Ags::inp_one(TsId(0), vec![MF::actual("absent")]).unwrap();
    let rd_found = Ags::rd_one(
        TsId(0),
        vec![
            MF::actual("t"),
            MF::bind(TypeTag::Int),
            MF::bind(TypeTag::Int),
        ],
    )
    .unwrap();
    let move_self = Ags::builder()
        .guard_true()
        .copy(TsId(0), TsId(0), vec![MF::actual("absent-too")])
        .build()
        .unwrap();
    vec![
        ("null AGS (true => )", null_ags()),
        ("out, 2 int fields", in_out_ags(2, 0)),
        ("out, 4 int fields", in_out_ags(4, 0)),
        ("out, 6 int fields", in_out_ags(6, 0)),
        ("in, all actuals (2 fields)", in_out_ags(2, 0)),
        ("in, 2 formals", in_out_ags(2, 2)),
        ("in, 4 formals", in_out_ags(4, 4)),
        ("in, 6 formals", in_out_ags(6, 6)),
        ("rd, 2 formals", rd_found),
        ("inp on absent tuple (strong false)", inp_absent),
        ("copy with empty match set", move_self),
    ]
}

fn print_table() {
    println!("\nTable 1 reproduction — AGS processing latency (this machine):");
    let base = measure_ns_per_apply(&base_kernel, &encoded(&null_ags()), 20_000);
    print_row("null AGS base cost", format!("{base:9.0} ns"));
    for (label, ags) in rows().into_iter().skip(1) {
        let ns = measure_ns_per_apply(&base_kernel, &encoded(&ags), 20_000);
        print_row(
            label,
            format!("{ns:9.0} ns  (marginal {:+9.0} ns)", ns - base),
        );
    }
    println!();
}

fn bench(c: &mut Criterion) {
    print_table();
    let mut g = c.benchmark_group("table1");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    for (label, ags) in rows() {
        let enc = encoded(&ags);
        g.bench_function(label, |b| {
            b.iter_custom(|iters| {
                let (mut k, mut seq) = base_kernel();
                let t0 = Instant::now();
                for _ in 0..iters {
                    apply_encoded(&mut k, &mut seq, &enc);
                }
                t0.elapsed()
            })
        });
    }
    g.finish();

    // Marginal cost scaling: body length 1..8 of the same out+in pair.
    let mut g = c.benchmark_group("table1_body_scaling");
    g.sample_size(15).measurement_time(Duration::from_secs(1));
    for nops in [1usize, 2, 4, 8] {
        let mut b = Ags::builder().guard_true();
        for _ in 0..nops {
            b = b
                .out(TsId(0), vec![Operand::cst("s"), Operand::cst(1)])
                .in_(TsId(0), vec![MF::actual("s"), MF::bind(TypeTag::Int)]);
        }
        let enc = encoded(&b.build().unwrap());
        g.bench_function(format!("{}_out_in_pairs", nops), |bch| {
            bch.iter_custom(|iters| {
                let (mut k, mut seq) = base_kernel();
                let t0 = Instant::now();
                for _ in 0..iters {
                    apply_encoded(&mut k, &mut seq, &enc);
                }
                t0.elapsed()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

/root/repo/target/debug/deps/linda_paradigms-744b5606db7b3bb9.d: crates/paradigms/src/lib.rs crates/paradigms/src/barrier.rs crates/paradigms/src/bot.rs crates/paradigms/src/checkpoint.rs crates/paradigms/src/consensus.rs crates/paradigms/src/distvar.rs crates/paradigms/src/dnc.rs crates/paradigms/src/pool.rs

/root/repo/target/debug/deps/linda_paradigms-744b5606db7b3bb9: crates/paradigms/src/lib.rs crates/paradigms/src/barrier.rs crates/paradigms/src/bot.rs crates/paradigms/src/checkpoint.rs crates/paradigms/src/consensus.rs crates/paradigms/src/distvar.rs crates/paradigms/src/dnc.rs crates/paradigms/src/pool.rs

crates/paradigms/src/lib.rs:
crates/paradigms/src/barrier.rs:
crates/paradigms/src/bot.rs:
crates/paradigms/src/checkpoint.rs:
crates/paradigms/src/consensus.rs:
crates/paradigms/src/distvar.rs:
crates/paradigms/src/dnc.rs:
crates/paradigms/src/pool.rs:

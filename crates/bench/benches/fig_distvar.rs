//! E4 / Figures 2–3 — distributed-variable update: atomic AGS vs the
//! plain-Linda two-step `in`;`out`.
//!
//! The figures are code listings, so the measurable content is the cost
//! relationship: the atomic update is ONE ordered multicast where the
//! two-step version needs TWO (and leaves the crash window in between).
//! We measure per-update latency for both forms and report the message
//! counts, then sweep updater contention.

use criterion::{criterion_group, criterion_main, Criterion};
use ftlinda::Cluster;
use linda_paradigms::DistVar;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let (cluster, rts) = Cluster::new(3);
    let ts = rts[0].create_stable_ts("vars").unwrap();
    let v = DistVar::create(&rts[0], ts, "x", 0).unwrap();

    // Message accounting: atomic = 1 broadcast, two-step = 2 broadcasts.
    cluster.reset_net_stats();
    v.fetch_add(&rts[1], 1).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    let (atomic_msgs, _) = cluster.net_stats();
    cluster.reset_net_stats();
    v.update_unsafe_two_step(&rts[1], |x| x + 1, false).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    let (twostep_msgs, _) = cluster.net_stats();
    println!("\nE4 — distributed variable update:");
    linda_bench::print_row("atomic AGS update, network messages", atomic_msgs);
    linda_bench::print_row("two-step in/out update, network messages", twostep_msgs);
    assert!(twostep_msgs > atomic_msgs);

    let mut g = c.benchmark_group("fig_distvar");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    g.bench_function("atomic_ags_update", |b| {
        b.iter(|| v.fetch_add(&rts[1], 1).unwrap())
    });
    g.bench_function("two_step_update", |b| {
        b.iter(|| v.update_unsafe_two_step(&rts[1], |x| x + 1, false).unwrap())
    });
    g.finish();

    // Contention sweep: total time for 60 increments split across 1..3
    // updater threads (atomic form; correctness under contention is what
    // the two-step form cannot give).
    println!("\nE4b — 60 atomic increments under contention:");
    let mut g = c.benchmark_group("fig_distvar_contention");
    g.sample_size(10).measurement_time(Duration::from_secs(3));
    for updaters in [1usize, 2, 3] {
        g.bench_function(format!("updaters_{updaters}"), |b| {
            b.iter(|| {
                let per = 60 / updaters;
                let hs: Vec<_> = (0..updaters)
                    .map(|i| {
                        let rt = rts[i].clone();
                        let v = v.clone();
                        std::thread::spawn(move || {
                            for _ in 0..per {
                                v.fetch_add(&rt, 1).unwrap();
                            }
                        })
                    })
                    .collect();
                for h in hs {
                    h.join().unwrap();
                }
            })
        });
    }
    g.finish();
    cluster.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! # linda-bench
//!
//! Shared workload generators and harness helpers for the benchmark
//! suite that reproduces the paper's evaluation (§5.3). One Criterion
//! bench target exists per table/figure — see DESIGN.md §4 for the
//! experiment index and EXPERIMENTS.md for paper-vs-measured results.

#![warn(missing_docs)]

use ftlinda_ags::{Ags, MatchField as MF, Operand, TsId};
use ftlinda_kernel::{encode_request, Kernel, KernelNote, Request};
use linda_tuple::{Tuple, TypeTag, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG for workloads.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// A random tuple with the given head and `fields` extra int fields.
pub fn int_tuple(head: &str, fields: usize, rng: &mut StdRng) -> Tuple {
    let mut v = vec![Value::Str(head.into())];
    for _ in 0..fields {
        v.push(Value::Int(rng.gen_range(0..1_000_000)));
    }
    Tuple::new(v)
}

/// A tuple carrying a string payload of `len` bytes.
pub fn payload_tuple(head: &str, len: usize) -> Tuple {
    Tuple::new(vec![Value::Str(head.into()), Value::Str("x".repeat(len))])
}

/// A standalone kernel with one stable space (TsId 0), pre-seeded by `f`.
/// Returns the kernel and a sequence counter starting after the setup
/// traffic.
pub fn seeded_kernel(f: impl FnOnce(&mut Kernel, &mut u64)) -> (Kernel, u64) {
    let (tx, rx) = crossbeam::channel::unbounded::<KernelNote>();
    // Keep the receiver alive for the kernel's lifetime; notes are
    // drained by nobody (unbounded channel), which is fine for benches.
    std::mem::forget(rx);
    let mut k = Kernel::new(consul_sim::HostId(0), tx);
    let mut seq = 1u64;
    apply_request(&mut k, &mut seq, &Request::CreateTs { name: "b".into() });
    f(&mut k, &mut seq);
    (k, seq)
}

/// Apply one request to a kernel, advancing the sequence counter.
pub fn apply_request(k: &mut Kernel, seq: &mut u64, req: &Request) {
    let payload = bytes::Bytes::from(encode_request(req));
    k.apply(&consul_sim::Delivery::App {
        seq: *seq,
        origin: consul_sim::HostId(0),
        local: *seq,
        payload,
    });
    *seq += 1;
}

/// Apply a pre-encoded payload (hot path for latency benches: excludes
/// encode cost, includes decode + execute, like the paper's TS state
/// machine measurements).
pub fn apply_encoded(k: &mut Kernel, seq: &mut u64, payload: &bytes::Bytes) {
    k.apply(&consul_sim::Delivery::App {
        seq: *seq,
        origin: consul_sim::HostId(0),
        local: *seq,
        payload: payload.clone(),
    });
    *seq += 1;
}

/// Encode an AGS request once.
pub fn encoded(ags: &Ags) -> bytes::Bytes {
    bytes::Bytes::from(encode_request(&Request::Ags(ags.clone())))
}

/// The null AGS: `⟨ true ⇒ ⟩` — the paper's base cost row.
pub fn null_ags() -> Ags {
    Ags::builder().guard_true().build().unwrap()
}

/// `out` with `fields` constant int fields.
pub fn out_ags(fields: usize) -> Ags {
    let mut t = vec![Operand::cst("t")];
    for i in 0..fields {
        t.push(Operand::cst(i as i64));
    }
    Ags::out_one(TsId(0), t)
}

/// `⟨ in(t, …) ⇒ out(same) ⟩` with `fields` int fields of which the
/// first `formals` are formal — a self-replenishing `in`, so the store
/// population is steady across iterations.
pub fn in_out_ags(fields: usize, formals: usize) -> Ags {
    let formals = formals.min(fields);
    let mut pat = vec![MF::actual("t")];
    for i in 0..fields {
        if i < formals {
            pat.push(MF::bind(TypeTag::Int));
        } else {
            pat.push(MF::actual(i as i64));
        }
    }
    let mut tmpl = vec![Operand::cst("t")];
    for i in 0..fields {
        if i < formals {
            tmpl.push(Operand::formal(i as u16));
        } else {
            tmpl.push(Operand::cst(i as i64));
        }
    }
    Ags::builder()
        .guard_in(TsId(0), pat)
        .out(TsId(0), tmpl)
        .build()
        .unwrap()
}

/// Pretty-print a two-column table row (used by benches that report the
/// paper's table rows alongside Criterion timings).
pub fn print_row(label: &str, value: impl std::fmt::Display) {
    println!("    {label:<44} {value}");
}

/// Time `n` applications of `payload` on a fresh kernel from `mk`,
/// returning nanoseconds per apply (median of 5 runs). Used by benches to
/// print the paper-style table rows alongside Criterion's rigorous
/// measurements.
pub fn measure_ns_per_apply(mk: &dyn Fn() -> (Kernel, u64), payload: &bytes::Bytes, n: u64) -> f64 {
    let mut samples = Vec::with_capacity(5);
    for _ in 0..5 {
        let (mut k, mut seq) = mk();
        let t0 = std::time::Instant::now();
        for _ in 0..n {
            apply_encoded(&mut k, &mut seq, payload);
        }
        samples.push(t0.elapsed().as_nanos() as f64 / n as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[2]
}

// ---------------------------------------------------------------------------
// Histogram-backed measurement (E2/E3/E5)
//
// The latency experiments consume the same `ftlinda_ags_*_seconds`
// histograms a production scrape would, instead of ad-hoc wall-clock
// loops: the numbers in EXPERIMENTS.md are then, by construction, the
// numbers `/metrics` exports.
// ---------------------------------------------------------------------------

/// Apply `n` copies of an encoded request on a fresh *instrumented*
/// kernel (fresh registry attached after seeding, so setup traffic is
/// excluded) and return the `ftlinda_ags_execute_seconds` snapshot.
pub fn instrumented_apply(
    mk: &dyn Fn() -> (Kernel, u64),
    payload: &bytes::Bytes,
    n: u64,
) -> linda_obs::HistogramSnapshot {
    let (mut k, mut seq) = mk();
    let reg = linda_obs::Registry::new();
    k.attach_obs(&reg);
    for _ in 0..n {
        apply_encoded(&mut k, &mut seq, payload);
    }
    stage_snapshot(&reg, "ftlinda_ags_execute_seconds")
}

/// Snapshot one named latency histogram from a registry (zeroed, not
/// absent, when nothing was observed yet).
pub fn stage_snapshot(reg: &linda_obs::Registry, name: &str) -> linda_obs::HistogramSnapshot {
    reg.histogram(name, "").snapshot()
}

/// Bucket-wise merge of one named stage histogram across several
/// registries — the cluster-wide view of that pipeline stage.
pub fn merged_stage(
    regs: &[std::sync::Arc<linda_obs::Registry>],
    name: &str,
) -> linda_obs::HistogramSnapshot {
    let mut it = regs.iter();
    let mut acc = stage_snapshot(it.next().expect("at least one registry"), name);
    for reg in it {
        assert!(
            acc.merge(&stage_snapshot(reg, name)),
            "bucket layout mismatch"
        );
    }
    acc
}

/// Render a histogram snapshot as a compact latency row:
/// `mean / p50 / p95 over count` in µs.
pub fn stage_cell(snap: &linda_obs::HistogramSnapshot) -> String {
    match (snap.mean(), snap.p50(), snap.p95()) {
        (Some(mean), Some(p50), Some(p95)) => format!(
            "mean {:>9.2} µs   p50 {:>9.2} µs   p95 {:>9.2} µs   (n={})",
            mean * 1e6,
            p50 * 1e6,
            p95 * 1e6,
            snap.count()
        ),
        _ => "no observations".into(),
    }
}

/// The per-stage pipeline metrics in causal order, as `(label, metric)`.
pub const PIPELINE_STAGES: &[(&str, &str)] = &[
    ("submit (client → wire)", "ftlinda_ags_submit_seconds"),
    ("order (submit → delivered)", "ftlinda_ags_order_seconds"),
    ("execute (kernel apply)", "ftlinda_ags_execute_seconds"),
    ("notify (apply → waiter)", "ftlinda_ags_notify_seconds"),
    ("total (submit → completion)", "ftlinda_ags_total_seconds"),
];

/// Print the per-stage latency attribution for a set of member
/// registries (merged bucket-wise), one row per pipeline stage.
pub fn print_stage_attribution(regs: &[std::sync::Arc<linda_obs::Registry>]) {
    for (label, metric) in PIPELINE_STAGES {
        print_row(label, stage_cell(&merged_stage(regs, metric)));
    }
}

// ---------------------------------------------------------------------------
// Bench artifact files
//
// Several bench targets contribute sections to the same JSON artifact
// (`BENCH_msgs_per_ags.json`): `batch_window` owns the window-sweep
// points and `shard_sweep` owns the shard-sweep section. Each writer
// updates only its own top-level keys so the benches can run in any
// order (or alone) without clobbering the other's results.
// ---------------------------------------------------------------------------

/// Set or replace top-level keys of a JSON-object artifact file,
/// preserving every other key. Creates the file (as `{…}`) when absent
/// or not a JSON object. `sections` holds `(key, pre-rendered value)`
/// pairs; the value must itself be valid JSON.
pub fn update_artifact_sections(path: &str, sections: &[(&str, String)]) {
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .filter(|s| s.trim_start().starts_with('{'))
        .unwrap_or_else(|| "{\n}\n".into());
    for (key, value) in sections {
        doc = set_json_key(&doc, key, value);
    }
    match std::fs::write(path, &doc) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Replace the value of top-level `key` in a rendered JSON object, or
/// insert the key before the closing brace when absent.
fn set_json_key(doc: &str, key: &str, value: &str) -> String {
    let needle = format!("\"{key}\"");
    if let Some((start, end)) = top_level_value_span(doc, &needle) {
        format!("{}{}{}", &doc[..start], value, &doc[end..])
    } else {
        // Insert before the final `}`.
        let close = doc.rfind('}').unwrap_or(doc.len());
        let body = doc[..close].trim_end();
        let comma = if body.trim_start().len() > 1 { "," } else { "" };
        format!("{body}{comma}\n  \"{key}\": {value}\n}}\n")
    }
}

/// Byte span of the value bound to `needle` (a quoted key) at nesting
/// depth 1, skipping string contents while scanning.
fn top_level_value_span(doc: &str, needle: &str) -> Option<(usize, usize)> {
    let bytes = doc.as_bytes();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if in_str {
            match c {
                b'\\' => i += 1,
                b'"' => in_str = false,
                _ => {}
            }
        } else {
            match c {
                b'"' => {
                    if depth == 1 && doc[i..].starts_with(needle) {
                        // Found the key: skip to the colon, then the value.
                        let mut j = i + needle.len();
                        while j < bytes.len() && bytes[j] != b':' {
                            j += 1;
                        }
                        j += 1;
                        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                            j += 1;
                        }
                        return Some((j, value_end(doc, j)));
                    }
                    in_str = true;
                }
                b'{' | b'[' => depth += 1,
                b'}' | b']' => depth -= 1,
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// End (exclusive) of the JSON value starting at `start`.
fn value_end(doc: &str, start: usize) -> usize {
    let bytes = doc.as_bytes();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut i = start;
    while i < bytes.len() {
        let c = bytes[i];
        if in_str {
            match c {
                b'\\' => i += 1,
                b'"' => {
                    in_str = false;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
        } else {
            match c {
                b'"' => in_str = true,
                b'{' | b'[' => depth += 1,
                b'}' | b']' => {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                    if depth < 0 {
                        return i; // end of enclosing object
                    }
                }
                b',' if depth == 0 => return i,
                _ => {}
            }
        }
        i += 1;
    }
    bytes.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use linda_tuple::pat;

    #[test]
    fn helpers_produce_valid_workloads() {
        let mut r = rng(1);
        let t = int_tuple("t", 3, &mut r);
        assert_eq!(t.arity(), 4);
        let p = payload_tuple("p", 100);
        assert_eq!(p[1].as_str().unwrap().len(), 100);
        assert_eq!(null_ags().op_count(), 0);
        assert_eq!(out_ags(2).op_count(), 1);
        assert_eq!(in_out_ags(3, 2).op_count(), 2);
    }

    #[test]
    fn set_json_key_inserts_replaces_and_preserves() {
        let doc = set_json_key("{\n}\n", "a", "[1, 2]");
        assert_eq!(doc, "{\n  \"a\": [1, 2]\n}\n");
        let doc = set_json_key(&doc, "b", "{\"x\": \"y,z}\"}");
        assert!(doc.contains("\"a\": [1, 2]"));
        assert!(doc.contains("\"b\": {\"x\": \"y,z}\"}"));
        // Replacing `a` keeps `b` (with its brace-bearing string) intact.
        let doc = set_json_key(&doc, "a", "3.5");
        assert!(doc.contains("\"a\": 3.5"), "{doc}");
        assert!(doc.contains("\"b\": {\"x\": \"y,z}\"}"), "{doc}");
        // Replacing a nested-object value by key at depth 1 only.
        let doc = set_json_key(&doc, "b", "7");
        assert!(doc.contains("\"b\": 7"), "{doc}");
        assert!(doc.contains("\"a\": 3.5"), "{doc}");
    }

    #[test]
    fn seeded_kernel_executes_in_out() {
        let (mut k, mut seq) = seeded_kernel(|k, seq| {
            apply_request(k, seq, &Request::Ags(out_ags(2)));
        });
        let enc = encoded(&in_out_ags(2, 2));
        for _ in 0..10 {
            apply_encoded(&mut k, &mut seq, &enc);
        }
        assert_eq!(k.stable_len(TsId(0)), Some(1));
        assert!(k
            .snapshot(TsId(0))
            .unwrap()
            .iter()
            .all(|t| pat!("t", ?int, ?int).matches(t)));
    }
}

/root/repo/target/debug/deps/ftlinda_kernel-ed079af63c890982.d: crates/kernel/src/lib.rs crates/kernel/src/exec.rs crates/kernel/src/kernel.rs crates/kernel/src/proto.rs Cargo.toml

/root/repo/target/debug/deps/libftlinda_kernel-ed079af63c890982.rmeta: crates/kernel/src/lib.rs crates/kernel/src/exec.rs crates/kernel/src/kernel.rs crates/kernel/src/proto.rs Cargo.toml

crates/kernel/src/lib.rs:
crates/kernel/src/exec.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/proto.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/examples/distributed_variable-7ac263437035ef4d.d: examples/distributed_variable.rs Cargo.toml

/root/repo/target/debug/examples/libdistributed_variable-7ac263437035ef4d.rmeta: examples/distributed_variable.rs Cargo.toml

examples/distributed_variable.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! # ftlinda-ags
//!
//! The atomic guarded statement (AGS) — FT-Linda's unit of atomic tuple
//! space update — as a validated intermediate representation:
//!
//! * [`Ags`]/[`Branch`]/[`Guard`]: `⟨ guard ⇒ body or guard ⇒ body … ⟩`
//! * [`Operand`]: the deterministic expression language allowed in bodies
//! * [`BodyOp`]: `out`, `in`, `rd`, `move`, `copy`
//! * wire codec ([`encode_ags`]/[`decode_ags`]) for the single multicast
//!   message that disseminates an AGS to every tuple-space replica
//!
//! The FT-lcc-style front-end in crate `ft-lcc` compiles a textual DSL to
//! this IR; the replicated state machine in `ftlinda-kernel` executes it.
//!
//! ```
//! use ftlinda_ags::{Ags, MatchField, Operand, TsId};
//! use linda_tuple::TypeTag;
//!
//! // ⟨ in(ts, "count", ?old) ⇒ out(ts, "count", old + 1) ⟩
//! let ags = Ags::builder()
//!     .guard_in(TsId(0), vec![MatchField::actual("count"),
//!                             MatchField::bind(TypeTag::Int)])
//!     .out(TsId(0), vec![Operand::cst("count"), Operand::formal(0).add(1)])
//!     .build()
//!     .unwrap();
//! assert_eq!(ags.op_count(), 2);
//! ```

#![warn(missing_docs)]

#[path = "ags.rs"]
mod ags_mod;
mod expr;
mod ops;
mod shard;
mod wire;

pub use ags_mod::{Ags, AgsBuilder, AgsError, AgsOutcome, Branch, Guard};
pub use expr::{apply, EvalCtx, EvalError, Func, Operand};
pub use ops::{resolve_pattern, resolve_template, BodyOp, MatchField, ScratchId, SpaceRef, TsId};
pub use shard::{imbalance_bp, shard_of, shard_set, static_keys, ShardKey};
pub use wire::{decode_ags, encode_ags, get_ags, put_ags, WireError};

/root/repo/target/debug/deps/concurrency_tests-cc66fccb96454e71.d: crates/space/tests/concurrency_tests.rs

/root/repo/target/debug/deps/concurrency_tests-cc66fccb96454e71: crates/space/tests/concurrency_tests.rs

crates/space/tests/concurrency_tests.rs:

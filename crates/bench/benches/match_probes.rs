//! Probes-per-match: the price of a tuple lookup as the space grows.
//!
//! The paper's implementation chapter argues that hash-based tuple
//! matching keeps `in`/`rd` cost roughly independent of tuple-space
//! size, while a naive linear store degrades with every resident tuple.
//! The match-probe counters added to both stores let us measure that
//! directly: for 10 / 1 000 / 100 000 resident tuples spread over 64
//! distinct head values, we count how many tuples each store *examines*
//! per `rd` — once for a pattern that matches (hit) and once for a
//! same-signature pattern that matches nothing (miss, the worst case:
//! every candidate must be probed).
//!
//! Besides the printed table, the run writes a `BENCH_match_probes.json`
//! artifact (to `$BENCH_MATCH_PROBES_JSON` or the working directory).

use criterion::{criterion_group, criterion_main, Criterion};
use linda_space::{IndexedStore, LinearStore, Store};
use linda_tuple::{pat, tuple, Pattern};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const SIZES: [usize; 3] = [10, 1_000, 100_000];
const HEADS: usize = 64;

struct Point {
    store: &'static str,
    tuples: usize,
    case: &'static str,
    attempts: u64,
    probes: u64,
    ns_per_op: f64,
}

impl Point {
    fn probes_per_match(&self) -> f64 {
        self.probes as f64 / self.attempts.max(1) as f64
    }
}

fn fill(store: &mut dyn Store, n: usize) {
    for i in 0..n {
        store.insert(tuple!(format!("key{}", i % HEADS), i as i64));
    }
}

/// Repeat `rd` with `p` and return (attempts, probes, ns/op) deltas.
fn measure(store: &dyn Store, p: &Pattern, iters: usize) -> (u64, u64, f64) {
    let before = store.match_stats();
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(store.read(std::hint::black_box(p)));
    }
    let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
    let d = store.match_stats().since(&before);
    (d.attempts, d.probes, ns)
}

fn run_store(store: &mut dyn Store, name: &'static str, n: usize, out: &mut Vec<Point>) {
    fill(store, n);
    // Keep total probe work bounded as n grows.
    let iters = (1_000_000 / n.max(1)).clamp(20, 10_000);
    // Hit: the oldest tuple with head "key63" (present for every size
    // since HEADS divides into each n at least once except n=10, where
    // "key9" is the largest head — pick one that always exists).
    let hit = pat!("key9", ?int);
    // Miss, same signature: no tuple carries a negative payload, so
    // every same-signature candidate is probed and rejected.
    let miss = pat!("key9", -1);
    for (case, p) in [("hit", &hit), ("miss", &miss)] {
        let (attempts, probes, ns) = measure(store, p, iters);
        out.push(Point {
            store: name,
            tuples: n,
            case,
            attempts,
            probes,
            ns_per_op: ns,
        });
    }
    store.clear();
}

fn write_artifact(points: &[Point]) {
    let mut json = String::from("{\n  \"bench\": \"match_probes\",\n");
    let _ = writeln!(json, "  \"heads\": {HEADS},\n  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"store\": \"{}\", \"tuples\": {}, \"case\": \"{}\", \
             \"attempts\": {}, \"probes\": {}, \"probes_per_match\": {:.3}, \
             \"ns_per_op\": {:.1}}}{comma}",
            p.store,
            p.tuples,
            p.case,
            p.attempts,
            p.probes,
            p.probes_per_match(),
            p.ns_per_op,
        );
    }
    json.push_str("  ]\n}\n");
    let path = std::env::var("BENCH_MATCH_PROBES_JSON")
        .unwrap_or_else(|_| "BENCH_match_probes.json".into());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

fn bench(c: &mut Criterion) {
    println!("\nProbes per match — {HEADS} head values, hit vs same-signature miss:");
    println!(
        "    {:<9} {:>8} {:>6} {:>10} {:>16} {:>12}",
        "store", "tuples", "case", "attempts", "probes/match", "ns/op"
    );
    let mut points = Vec::new();
    for n in SIZES {
        run_store(&mut IndexedStore::new(), "indexed", n, &mut points);
        run_store(&mut LinearStore::new(), "linear", n, &mut points);
    }
    for p in &points {
        println!(
            "    {:<9} {:>8} {:>6} {:>10} {:>16.3} {:>12.1}",
            p.store,
            p.tuples,
            p.case,
            p.attempts,
            p.probes_per_match(),
            p.ns_per_op,
        );
    }
    println!();
    // The claim under test: the indexed store's probe count stays flat
    // (bounded by one head bucket) while the linear store degrades with
    // the resident-tuple count.
    for n in SIZES {
        let probes = |store: &str, case: &str| {
            points
                .iter()
                .find(|p| p.store == store && p.tuples == n && p.case == case)
                .unwrap()
                .probes_per_match()
        };
        assert!(
            probes("indexed", "hit") <= 2.0,
            "indexed hit at {n} tuples should probe O(1) (head index)"
        );
        assert!(
            probes("indexed", "miss") <= (n / HEADS) as f64 + 1.0,
            "indexed miss at {n} tuples is bounded by one head bucket"
        );
        assert!(
            probes("linear", "miss") >= n as f64,
            "linear miss must scan the whole store"
        );
        if n >= 1_000 {
            assert!(
                probes("indexed", "miss") < probes("linear", "miss"),
                "index must beat linear scan at {n} tuples"
            );
        }
    }
    write_artifact(&points);

    // Criterion angle: one rd against 1k resident tuples per store.
    let mut g = c.benchmark_group("match_probes");
    g.sample_size(20).measurement_time(Duration::from_secs(2));
    let mut indexed = IndexedStore::new();
    fill(&mut indexed, 1_000);
    let mut linear = LinearStore::new();
    fill(&mut linear, 1_000);
    let miss = pat!("key9", -1);
    g.bench_function("indexed_miss_1k", |b| {
        b.iter(|| std::hint::black_box(indexed.read(std::hint::black_box(&miss))))
    });
    g.bench_function("linear_miss_1k", |b| {
        b.iter(|| std::hint::black_box(linear.read(std::hint::black_box(&miss))))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

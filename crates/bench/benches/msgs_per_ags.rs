//! E9 — the headline implementation claim: **one multicast per AGS**,
//! regardless of how many tuple operations it contains.
//!
//! We count physical network messages and bytes for AGSs with 1–16 body
//! operations and compare against two simulated baselines:
//!
//! * **per-op multicast** — each tuple operation ordered separately (what
//!   a naive replicated-Linda does): messages grow linearly with ops.
//! * **2PC-style** — prepare + vote + commit rounds per atomic group
//!   (what transaction-based designs like PLinda pay): ~3 rounds of n
//!   messages regardless of ops, i.e. a constant ~3× the FT-Linda cost.
//!
//! Expected shape (and the paper's point): FT-Linda's message count is
//! flat in ops-per-AGS; only bytes grow.

use criterion::{criterion_group, criterion_main, Criterion};
use ftlinda::{Ags, Cluster, MatchField as MF, Operand, Runtime, TsId, TypeTag};
use std::time::Duration;

const HOSTS: u64 = 4;

/// Wait until the network message counter stops moving (three identical
/// consecutive samples): every in-flight message for the previous
/// measurement has landed.
fn wait_net_quiesced(cluster: &Cluster) {
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    let mut last = cluster.net_stats().0;
    let mut stable = 0;
    while std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
        let now = cluster.net_stats().0;
        if now == last {
            stable += 1;
            if stable >= 3 {
                return;
            }
        } else {
            stable = 0;
            last = now;
        }
    }
}

fn nop_ags(ts: TsId, nops: usize) -> Ags {
    let mut b = Ags::builder().guard_true();
    for i in 0..nops {
        b = b
            .out(ts, vec![Operand::cst("s"), Operand::cst(i as i64)])
            .in_(ts, vec![MF::actual("s"), MF::bind(TypeTag::Int)]);
    }
    b.build().unwrap()
}

/// Messages/bytes for one FT-Linda AGS with `nops` out+in pairs.
fn measure_ftlinda(rts: &[Runtime], cluster: &Cluster, ts: TsId, nops: usize) -> (u64, u64) {
    wait_net_quiesced(cluster);
    cluster.reset_net_stats();
    rts[1].execute(&nop_ags(ts, nops)).unwrap();
    wait_net_quiesced(cluster);
    cluster.net_stats()
}

/// Baseline: each op ordered as its own AGS (per-op multicast).
fn measure_per_op(rts: &[Runtime], cluster: &Cluster, ts: TsId, nops: usize) -> (u64, u64) {
    wait_net_quiesced(cluster);
    cluster.reset_net_stats();
    for i in 0..nops {
        rts[1]
            .execute(&Ags::out_one(
                ts,
                vec![Operand::cst("s"), Operand::cst(i as i64)],
            ))
            .unwrap();
        rts[1]
            .execute(&Ags::in_one(ts, vec![MF::actual("s"), MF::bind(TypeTag::Int)]).unwrap())
            .unwrap();
    }
    wait_net_quiesced(cluster);
    cluster.net_stats()
}

/// Analytic 2PC baseline (prepare to n-1, n-1 votes, commit to n-1 —
/// per atomic group), using the measured FT-Linda byte volume for the
/// prepare payload.
fn twopc_messages() -> u64 {
    3 * (HOSTS - 1)
}

/// Run `submitters` threads each executing `per_submitter` single-out
/// AGSs against a fresh cluster, with group commit on or off. Returns
/// `(ags_total, ordered_multicasts, batches, elapsed_secs)`.
fn measure_concurrent(
    submitters: usize,
    per_submitter: usize,
    batch_on: bool,
) -> (u64, u64, u64, f64) {
    // Checkpoint markers would perturb the exact message counts this
    // experiment asserts; measure the bare protocol.
    let mut b = Cluster::builder().hosts(HOSTS as u32).no_checkpoints();
    if !batch_on {
        b = b.no_batching();
    }
    let (cluster, rts) = b.build();
    let ts = rts[0].create_stable_ts("main").unwrap();
    wait_net_quiesced(&cluster);
    cluster.order_stats().reset();
    let t0 = std::time::Instant::now();
    std::thread::scope(|s| {
        for i in 0..submitters {
            let rt = &rts[i % rts.len()];
            s.spawn(move || {
                for k in 0..per_submitter {
                    rt.execute(&Ags::out_one(
                        ts,
                        vec![Operand::cst("s"), Operand::cst(k as i64)],
                    ))
                    .unwrap();
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();
    wait_net_quiesced(&cluster);
    let stats = cluster.order_stats();
    let out = (
        (submitters * per_submitter) as u64,
        stats.ordered_multicasts(),
        stats.batches(),
        elapsed,
    );
    cluster.shutdown();
    out
}

fn bench(c: &mut Criterion) {
    let (cluster, rts) = Cluster::builder()
        .hosts(HOSTS as u32)
        .no_checkpoints()
        .build();
    let ts = rts[0].create_stable_ts("main").unwrap();

    println!("\nE9 — messages per atomic group of N tuple-op pairs (4 hosts):");
    println!(
        "    {:<8} {:>16} {:>16} {:>14} {:>12}",
        "ops", "FT-Linda msgs", "per-op msgs", "2PC msgs", "FT bytes"
    );
    for nops in [1usize, 2, 4, 8, 16] {
        let (ft_m, ft_b) = measure_ftlinda(&rts, &cluster, ts, nops);
        let (po_m, _) = measure_per_op(&rts, &cluster, ts, nops);
        println!(
            "    {:<8} {:>16} {:>16} {:>14} {:>12}",
            nops,
            ft_m,
            po_m,
            twopc_messages(),
            ft_b
        );
        // The claim itself, asserted: constant message count.
        assert_eq!(ft_m, HOSTS, "1 submit + (n-1) ordered, flat in ops");
        assert_eq!(po_m, 2 * nops as u64 * HOSTS);
    }
    println!();

    // E9b — group commit under concurrency: 8 submitters hammering the
    // coordinator. Batching must beat one ordered multicast per AGS;
    // disabling it must reproduce the classic one-record-per-AGS cost.
    const SUBMITTERS: usize = 8;
    const PER_SUBMITTER: usize = 150;
    println!("E9b — ordered multicasts per AGS, {SUBMITTERS} concurrent submitters (4 hosts):");
    println!(
        "    {:<10} {:>8} {:>18} {:>10} {:>16} {:>14}",
        "batching", "AGSs", "ordered multicasts", "batches", "multicasts/AGS", "AGS/sec"
    );
    for batch_on in [true, false] {
        let (ags, multicasts, batches, secs) =
            measure_concurrent(SUBMITTERS, PER_SUBMITTER, batch_on);
        println!(
            "    {:<10} {:>8} {:>18} {:>10} {:>16.3} {:>14.0}",
            if batch_on { "on" } else { "off" },
            ags,
            multicasts,
            batches,
            multicasts as f64 / ags as f64,
            ags as f64 / secs
        );
        if batch_on {
            assert!(
                multicasts < ags,
                "group commit must order strictly fewer multicasts ({multicasts}) \
                 than AGSs ({ags})"
            );
        } else {
            assert_eq!(
                multicasts, ags,
                "batching off: exactly one ordered multicast per AGS"
            );
            assert_eq!(batches, 0, "batching off: no coalesced flushes");
        }
    }
    println!();

    // Per-stage AGS latency percentiles from the submitting host's
    // metrics registry (the same data `Runtime::metrics_text` exposes).
    let obs = rts[1].obs();
    println!("E9 — per-stage AGS latency on the submitting host (µs):");
    println!(
        "    {:<32} {:>8} {:>10} {:>10} {:>10}",
        "stage", "count", "p50", "p95", "p99"
    );
    for (name, help) in [
        ("ftlinda_ags_submit_seconds", "submit"),
        ("ftlinda_ags_order_seconds", "order"),
        ("ftlinda_ags_execute_seconds", "execute"),
        ("ftlinda_ags_notify_seconds", "notify"),
        ("ftlinda_ags_total_seconds", "total"),
    ] {
        let snap = obs.histogram(name, help).snapshot();
        let us = |q: Option<f64>| q.map_or(0.0, |s| s * 1e6);
        println!(
            "    {:<32} {:>8} {:>10.1} {:>10.1} {:>10.1}",
            name,
            snap.count(),
            us(snap.p50()),
            us(snap.p95()),
            us(snap.p99())
        );
    }
    println!();

    // Criterion angle: per-AGS wall time flat-ish vs per-op linear.
    let mut g = c.benchmark_group("msgs_per_ags_latency");
    g.sample_size(15).measurement_time(Duration::from_secs(2));
    for nops in [1usize, 4, 16] {
        let ags = nop_ags(ts, nops);
        g.bench_function(format!("ftlinda_{nops}_op_pairs"), |b| {
            b.iter(|| rts[1].execute(&ags).unwrap())
        });
        g.bench_function(format!("per_op_{nops}_op_pairs"), |b| {
            b.iter(|| {
                for i in 0..nops {
                    rts[1]
                        .execute(&Ags::out_one(
                            ts,
                            vec![Operand::cst("s"), Operand::cst(i as i64)],
                        ))
                        .unwrap();
                    rts[1]
                        .execute(
                            &Ags::in_one(ts, vec![MF::actual("s"), MF::bind(TypeTag::Int)])
                                .unwrap(),
                        )
                        .unwrap();
                }
            })
        });
    }
    g.finish();
    cluster.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);

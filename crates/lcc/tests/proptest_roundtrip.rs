//! Property test: pretty-print → recompile is the identity on any
//! DSL-expressible AGS.

use ft_lcc::{print_ags, Compiler, SpaceNames};
use ftlinda_ags::{AgsBuilder, Func, MatchField, Operand, ScratchId, TsId};
use linda_tuple::{TypeTag, Value};
use proptest::prelude::*;

/// Printable scalar constants (Bytes/Tuple literals have no DSL syntax).
fn arb_const() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        // Finite, exactly-representable floats round-trip through Display.
        (-1000i32..1000).prop_map(|i| Value::Float(i as f64 / 4.0)),
        any::<bool>().prop_map(Value::Bool),
        "[a-zA-Z0-9 _\\\\\"\n\t]{0,10}".prop_map(Value::Str),
        prop_oneof![Just('a'), Just('Z'), Just('\''), Just('\\'), Just('\n')].prop_map(Value::Char),
    ]
}

fn arb_operand(bound: u16) -> impl Strategy<Value = Operand> {
    let leaf = if bound == 0 {
        prop_oneof![
            arb_const().prop_map(Operand::Const),
            Just(Operand::SelfHost),
            Just(Operand::RequestSeq),
        ]
        .boxed()
    } else {
        prop_oneof![
            arb_const().prop_map(Operand::Const),
            (0..bound).prop_map(Operand::Formal),
            Just(Operand::SelfHost),
        ]
        .boxed()
    };
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(Func::Add),
                    Just(Func::Sub),
                    Just(Func::Mul),
                    Just(Func::Div),
                    Just(Func::Mod),
                    Just(Func::Min),
                    Just(Func::Max),
                    Just(Func::Eq),
                    Just(Func::Lt),
                    Just(Func::Concat),
                ],
                inner.clone(),
                inner.clone(),
            )
                .prop_map(|(f, a, b)| Operand::Apply(f, vec![a, b])),
            inner
                .clone()
                .prop_map(|a| Operand::Apply(Func::Neg, vec![a])),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(c, t, e)| Operand::Apply(Func::If, vec![c, t, e])),
        ]
    })
}

fn arb_tag() -> impl Strategy<Value = TypeTag> {
    // All tags are printable as ?type.
    (0u8..7).prop_map(|b| TypeTag::from_u8(b).unwrap())
}

#[derive(Debug, Clone)]
enum FieldKind {
    Bind(TypeTag),
    Expr, // operand drawn separately
}

fn arb_field() -> impl Strategy<Value = FieldKind> {
    prop_oneof![arb_tag().prop_map(FieldKind::Bind), Just(FieldKind::Expr),]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn print_then_compile_is_identity(
        guard in proptest::option::of((proptest::collection::vec(arb_field(), 0..4), any::<bool>())),
        body_shape in proptest::collection::vec((0u8..5, proptest::collection::vec(arb_field(), 0..3)), 0..4),
        exprs in proptest::collection::vec(arb_operand(0), 8),
        exprs_bound in proptest::collection::vec(arb_operand(4), 8),
        add_true_branch in any::<bool>(),
    ) {
        // Assemble a valid AGS; expression fields draw from `exprs` when
        // nothing is bound yet and `exprs_bound` (clamped) afterwards.
        let mut bound: u16 = 0;
        let mut ei = 0usize;
        let mut pick = |bound: u16| -> Operand {
            let op = if bound == 0 {
                canon(&exprs[ei % exprs.len()])
            } else {
                canon(&clamp_formals(&exprs_bound[ei % exprs_bound.len()], bound))
            };
            ei += 1;
            op
        };
        fn clamp_formals(op: &Operand, bound: u16) -> Operand {
            match op {
                Operand::Formal(i) => Operand::Formal(i % bound),
                Operand::Apply(f, args) => Operand::Apply(
                    *f,
                    args.iter().map(|a| clamp_formals(a, bound)).collect(),
                ),
                other => other.clone(),
            }
        }
        /// Canonicalize as the parser does: fold Neg over numeric consts.
        fn canon(op: &Operand) -> Operand {
            match op {
                Operand::Apply(Func::Neg, args) => {
                    let inner = canon(&args[0]);
                    match inner {
                        Operand::Const(Value::Int(i)) => {
                            Operand::Const(Value::Int(i.wrapping_neg()))
                        }
                        Operand::Const(Value::Float(x)) => {
                            Operand::Const(Value::Float(-x))
                        }
                        other => Operand::Apply(Func::Neg, vec![other]),
                    }
                }
                Operand::Apply(f, args) => {
                    Operand::Apply(*f, args.iter().map(canon).collect())
                }
                other => other.clone(),
            }
        }
        let mut b = AgsBuilder::new();
        match &guard {
            None => b = b.guard_true(),
            Some((fields, is_in)) => {
                let fs: Vec<MatchField> = fields.iter().map(|f| match f {
                    FieldKind::Bind(t) => { bound += 1; MatchField::Bind(*t) }
                    FieldKind::Expr => MatchField::Expr(pick(0)),
                }).collect();
                b = if *is_in { b.guard_in(TsId(0), fs) } else { b.guard_rd(TsId(0), fs) };
            }
        }
        for (kind, fields) in &body_shape {
            match kind {
                0 => {
                    let tmpl: Vec<Operand> =
                        fields.iter().map(|_| pick(bound)).collect();
                    b = b.out(TsId(0), tmpl);
                }
                1 | 2 => {
                    // Expression fields may only reference formals bound
                    // *before* this op (validator rule).
                    let before = bound;
                    let fs: Vec<MatchField> = fields.iter().map(|f| match f {
                        FieldKind::Bind(t) => { bound += 1; MatchField::Bind(*t) }
                        FieldKind::Expr => MatchField::Expr(pick(before)),
                    }).collect();
                    b = if *kind == 1 { b.in_(TsId(0), fs) } else { b.rd(TsId(0), fs) };
                }
                3 => {
                    let fs: Vec<MatchField> = fields.iter().map(|f| match f {
                        FieldKind::Bind(t) => MatchField::Bind(*t),
                        FieldKind::Expr => MatchField::Expr(pick(bound)),
                    }).collect();
                    b = b.move_(TsId(0), TsId(1), fs);
                }
                _ => {
                    let fs: Vec<MatchField> = fields.iter().map(|f| match f {
                        FieldKind::Bind(t) => MatchField::Bind(*t),
                        FieldKind::Expr => MatchField::Expr(pick(bound)),
                    }).collect();
                    b = b.copy(TsId(0), ScratchId(0), fs);
                }
            }
        }
        if add_true_branch {
            b = b.or().guard_true();
        }
        let ags = match b.build() { Ok(a) => a, Err(e) => return Err(TestCaseError::fail(format!("invalid construction: {e}"))) };

        // Round trip.
        let names = SpaceNames::new()
            .stable(TsId(0), "ts")
            .stable(TsId(1), "ts2")
            .scratch(ScratchId(0), "tmp");
        let src = print_ags(&ags, &names);
        let mut c = Compiler::new();
        c.bind_stable("ts", TsId(0));
        c.bind_stable("ts2", TsId(1));
        c.bind_scratch("tmp", ScratchId(0));
        let prog = c.compile(&src);
        let prog = prop_assert_ok(prog, &src)?;
        prop_assert_eq!(&prog.statements[0], &ags, "source:\n{}", src);
    }
}

fn prop_assert_ok<T, E: std::fmt::Display>(r: Result<T, E>, src: &str) -> Result<T, TestCaseError> {
    match r {
        Ok(v) => Ok(v),
        Err(e) => Err(TestCaseError::fail(format!(
            "reparse failed: {e}\nsource:\n{src}"
        ))),
    }
}

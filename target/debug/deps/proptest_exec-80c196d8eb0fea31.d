/root/repo/target/debug/deps/proptest_exec-80c196d8eb0fea31.d: crates/kernel/tests/proptest_exec.rs Cargo.toml

/root/repo/target/debug/deps/libproptest_exec-80c196d8eb0fea31.rmeta: crates/kernel/tests/proptest_exec.rs Cargo.toml

crates/kernel/tests/proptest_exec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/integration_runprogram-76e859efc8f6b78c.d: tests/integration_runprogram.rs

/root/repo/target/debug/deps/integration_runprogram-76e859efc8f6b78c: tests/integration_runprogram.rs

tests/integration_runprogram.rs:

/root/repo/target/debug/deps/consul_sim-6b8c147a48bcb572.d: crates/consul/src/lib.rs crates/consul/src/isis.rs crates/consul/src/net.rs crates/consul/src/order.rs crates/consul/src/sequencer.rs crates/consul/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libconsul_sim-6b8c147a48bcb572.rmeta: crates/consul/src/lib.rs crates/consul/src/isis.rs crates/consul/src/net.rs crates/consul/src/order.rs crates/consul/src/sequencer.rs crates/consul/src/stats.rs Cargo.toml

crates/consul/src/lib.rs:
crates/consul/src/isis.rs:
crates/consul/src/net.rs:
crates/consul/src/order.rs:
crates/consul/src/sequencer.rs:
crates/consul/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/fig_rpc_variant-e313457d2e850fc2.d: crates/bench/benches/fig_rpc_variant.rs Cargo.toml

/root/repo/target/debug/deps/libfig_rpc_variant-e313457d2e850fc2.rmeta: crates/bench/benches/fig_rpc_variant.rs Cargo.toml

crates/bench/benches/fig_rpc_variant.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

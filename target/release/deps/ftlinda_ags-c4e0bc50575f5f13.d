/root/repo/target/release/deps/ftlinda_ags-c4e0bc50575f5f13.d: crates/ags/src/lib.rs crates/ags/src/ags.rs crates/ags/src/expr.rs crates/ags/src/ops.rs crates/ags/src/wire.rs

/root/repo/target/release/deps/libftlinda_ags-c4e0bc50575f5f13.rlib: crates/ags/src/lib.rs crates/ags/src/ags.rs crates/ags/src/expr.rs crates/ags/src/ops.rs crates/ags/src/wire.rs

/root/repo/target/release/deps/libftlinda_ags-c4e0bc50575f5f13.rmeta: crates/ags/src/lib.rs crates/ags/src/ags.rs crates/ags/src/expr.rs crates/ags/src/ops.rs crates/ags/src/wire.rs

crates/ags/src/lib.rs:
crates/ags/src/ags.rs:
crates/ags/src/expr.rs:
crates/ags/src/ops.rs:
crates/ags/src/wire.rs:

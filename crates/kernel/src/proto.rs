//! The request protocol carried inside ordered multicast payloads.
//!
//! Every client interaction with stable tuple spaces is one of these
//! requests, encoded into the single multicast message the paper's design
//! calls for. All replicas decode and apply the same request at the same
//! sequence number.

use bytes::{Buf, BufMut};
use ftlinda_ags::{decode_ags, encode_ags, Ags, WireError};
use linda_tuple::{get_uvarint, put_uvarint, DecodeError};

/// A command for the replicated tuple-space state machine.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Create (or look up) a stable tuple space by name. Idempotent: the
    /// same name always resolves to the same id. The id is assigned
    /// deterministically by creation order in the total order.
    CreateTs {
        /// Human-readable space name.
        name: String,
    },
    /// Execute an atomic guarded statement.
    Ags(Ags),
}

/// Encode a request into a fresh buffer.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    match req {
        Request::CreateTs { name } => {
            buf.put_u8(0);
            put_uvarint(&mut buf, name.len() as u64);
            buf.put_slice(name.as_bytes());
        }
        Request::Ags(ags) => {
            buf.put_u8(1);
            buf.extend_from_slice(&encode_ags(ags));
        }
    }
    buf
}

/// Decode a request; validates embedded AGSs.
pub fn decode_request(mut bytes: &[u8]) -> Result<Request, WireError> {
    if bytes.is_empty() {
        return Err(WireError::Codec(DecodeError::UnexpectedEof));
    }
    let tag = bytes.get_u8();
    match tag {
        0 => {
            let n = get_uvarint(&mut bytes)? as usize;
            if n > bytes.len() {
                return Err(WireError::Codec(DecodeError::LengthOverrun {
                    declared: n,
                    remaining: bytes.len(),
                }));
            }
            let name = std::str::from_utf8(&bytes[..n])
                .map_err(|_| WireError::Codec(DecodeError::BadUtf8))?
                .to_owned();
            Ok(Request::CreateTs { name })
        }
        1 => Ok(Request::Ags(decode_ags(bytes)?)),
        other => Err(WireError::BadDiscriminant(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftlinda_ags::{MatchField, Operand, TsId};

    #[test]
    fn create_ts_roundtrip() {
        let r = Request::CreateTs {
            name: "main".into(),
        };
        assert_eq!(decode_request(&encode_request(&r)).unwrap(), r);
    }

    #[test]
    fn ags_roundtrip() {
        let ags = Ags::builder()
            .guard_in(
                TsId(0),
                vec![
                    MatchField::actual("c"),
                    MatchField::bind(linda_tuple::TypeTag::Int),
                ],
            )
            .out(TsId(0), vec![Operand::cst("c"), Operand::formal(0).add(1)])
            .build()
            .unwrap();
        let r = Request::Ags(ags);
        assert_eq!(decode_request(&encode_request(&r)).unwrap(), r);
    }

    #[test]
    fn empty_buffer_rejected() {
        assert!(decode_request(&[]).is_err());
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(matches!(
            decode_request(&[9]),
            Err(WireError::BadDiscriminant(9))
        ));
    }

    #[test]
    fn truncated_name_rejected() {
        let mut buf = vec![0u8];
        put_uvarint(&mut buf, 100);
        buf.push(b'x');
        assert!(decode_request(&buf).is_err());
    }
}

//! ISIS-style agreed-timestamp total-order multicast.
//!
//! The ablation counterpart (A1) to the sequencer: no coordinator, two
//! protocol phases. The sender multicasts a proposal; every member
//! answers with a proposed timestamp `(lamport_clock, member_id)`; the
//! sender picks the maximum and multicasts the commit; members hold
//! messages in a priority queue ordered by timestamp and deliver a
//! message once it is committed and no pending message could precede it.
//!
//! Message cost per broadcast is `3·n` (propose fan-out, one reply per
//! member, commit fan-out) versus the sequencer's `n`; latency is two
//! round trips versus one-and-a-half hops. The FT-Linda runtime uses the
//! sequencer; this implementation handles failure-free operation only and
//! exists to quantify the protocol choice (see DESIGN.md §6).

use crate::net::{HostId, NetConfig, NetEvent, SimNet, WireSized};
use crate::order::{Delivery, LocalId};
use crate::stats::OrderStats;
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::time::Duration;

/// A proposed or final timestamp: `(lamport_clock, proposing_member)`.
/// The member id breaks ties, making the order total.
pub type Ts = (u64, u32);

/// Protocol messages.
#[derive(Debug, Clone)]
pub enum IsisMsg {
    /// Sender → all: here is a message, propose a timestamp.
    Propose {
        /// Origin-local id.
        local: LocalId,
        /// Payload bytes.
        payload: Bytes,
    },
    /// Member → sender: my proposed timestamp for your message.
    ProposeTs {
        /// Origin-local id being answered.
        local: LocalId,
        /// Proposed timestamp.
        ts: Ts,
    },
    /// Sender → all: the agreed (maximum) timestamp.
    Commit {
        /// Origin-local id.
        local: LocalId,
        /// Final timestamp.
        ts: Ts,
    },
}

impl WireSized for IsisMsg {
    fn wire_size(&self) -> usize {
        match self {
            IsisMsg::Propose { payload, .. } => 1 + 8 + payload.len(),
            IsisMsg::ProposeTs { .. } => 1 + 8 + 12,
            IsisMsg::Commit { .. } => 1 + 8 + 12,
        }
    }
}

#[derive(Debug)]
struct PendingEntry {
    origin: HostId,
    local: LocalId,
    payload: Bytes,
    committed: bool,
}

struct State {
    me: HostId,
    universe: Vec<HostId>,
    clock: u64,
    net: SimNet<IsisMsg>,
    dtx: crossbeam::channel::Sender<Delivery>,
    stats: Arc<OrderStats>,
    /// Priority queue keyed by (current) timestamp.
    pending: BTreeMap<(Ts, HostId, LocalId), PendingEntry>,
    /// Reverse index: which key a message currently sits under.
    keys: HashMap<(HostId, LocalId), (Ts, HostId, LocalId)>,
    /// Sender side: proposals collected for my outstanding broadcasts.
    collecting: HashMap<LocalId, (Vec<Ts>, usize)>,
    next_local: LocalId,
    delivered: u64,
}

impl State {
    fn on_msg(&mut self, from: HostId, msg: IsisMsg) {
        match msg {
            IsisMsg::Propose { local, payload } => {
                self.clock += 1;
                let ts: Ts = (self.clock, self.me.0);
                let key = (ts, from, local);
                self.pending.insert(
                    key,
                    PendingEntry {
                        origin: from,
                        local,
                        payload,
                        committed: false,
                    },
                );
                self.keys.insert((from, local), key);
                self.net
                    .send(self.me, from, IsisMsg::ProposeTs { local, ts });
            }
            IsisMsg::ProposeTs { local, ts } => {
                if let Some((props, want)) = self.collecting.get_mut(&local) {
                    props.push(ts);
                    if props.len() >= *want {
                        let final_ts = *props.iter().max().expect("nonempty");
                        self.collecting.remove(&local);
                        self.clock = self.clock.max(final_ts.0);
                        let me = self.me;
                        let dests: Vec<HostId> = self.universe.clone();
                        self.net.multicast(
                            me,
                            dests,
                            IsisMsg::Commit {
                                local,
                                ts: final_ts,
                            },
                        );
                    }
                }
            }
            IsisMsg::Commit { local, ts } => {
                self.clock = self.clock.max(ts.0);
                if let Some(old_key) = self.keys.remove(&(from, local)) {
                    if let Some(mut entry) = self.pending.remove(&old_key) {
                        entry.committed = true;
                        let new_key = (ts, from, local);
                        self.keys.insert((from, local), new_key);
                        self.pending.insert(new_key, entry);
                    }
                }
                self.try_deliver();
            }
        }
    }

    /// Deliver from the head of the queue while the head is committed: an
    /// uncommitted head could still end up with a larger final timestamp,
    /// but never a smaller one, so a committed head is stable.
    fn try_deliver(&mut self) {
        while let Some((&key, entry)) = self.pending.iter().next() {
            if !entry.committed {
                return;
            }
            let entry = self.pending.remove(&key).expect("present");
            self.keys.remove(&(entry.origin, entry.local));
            self.delivered += 1;
            self.stats.record_delivery();
            let _ = self.dtx.send(Delivery::App {
                seq: self.delivered,
                origin: entry.origin,
                local: entry.local,
                payload: entry.payload,
            });
        }
    }
}

/// Handle to one member of an ISIS ordering group.
pub struct IsisMember {
    me: HostId,
    state: Arc<Mutex<State>>,
    deliveries: crossbeam::channel::Receiver<Delivery>,
    stats: Arc<OrderStats>,
    stop: Arc<AtomicBool>,
}

/// Factory for an ISIS group over a simulated network (failure-free).
pub struct IsisGroup {
    net: SimNet<IsisMsg>,
    stats: Arc<OrderStats>,
}

impl IsisGroup {
    /// Create a group of `n` members.
    pub fn new(n: u32, cfg: NetConfig) -> (IsisGroup, Vec<IsisMember>) {
        let (net, rxs) = SimNet::<IsisMsg>::new(n, cfg);
        let universe: Vec<HostId> = (0..n).map(HostId).collect();
        let stats = Arc::new(OrderStats::default());
        let members = rxs
            .into_iter()
            .enumerate()
            .map(|(i, rx)| {
                let me = HostId(i as u32);
                let (dtx, drx) = crossbeam::channel::unbounded();
                let state = Arc::new(Mutex::new(State {
                    me,
                    universe: universe.clone(),
                    clock: 0,
                    net: net.clone(),
                    dtx,
                    stats: stats.clone(),
                    pending: BTreeMap::new(),
                    keys: HashMap::new(),
                    collecting: HashMap::new(),
                    next_local: 1,
                    delivered: 0,
                }));
                let stop = Arc::new(AtomicBool::new(false));
                let member = IsisMember {
                    me,
                    state: state.clone(),
                    deliveries: drx,
                    stats: stats.clone(),
                    stop: stop.clone(),
                };
                std::thread::Builder::new()
                    .name(format!("isis-{me}"))
                    .spawn(move || loop {
                        if stop.load(AtomicOrdering::Relaxed) {
                            return;
                        }
                        match rx.recv_timeout(Duration::from_millis(50)) {
                            Ok(NetEvent::Msg { from, msg }) => state.lock().on_msg(from, msg),
                            Ok(_) => {} // no failure handling in the ablation protocol
                            Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                        }
                    })
                    .expect("spawn isis member");
                member
            })
            .collect();
        (IsisGroup { net, stats }, members)
    }

    /// The simulated network (for stats).
    pub fn net(&self) -> &SimNet<IsisMsg> {
        &self.net
    }

    /// Ordering statistics.
    pub fn stats(&self) -> &OrderStats {
        &self.stats
    }

    /// Tear down the router.
    pub fn shutdown(&self) {
        self.net.shutdown();
    }
}

impl IsisMember {
    /// This member's host id.
    pub fn host(&self) -> HostId {
        self.me
    }

    /// Submit a payload for totally-ordered delivery.
    pub fn broadcast(&self, payload: Bytes) -> LocalId {
        self.stats.record_broadcast();
        let mut st = self.state.lock();
        let local = st.next_local;
        st.next_local += 1;
        let want = st.universe.len();
        st.collecting.insert(local, (Vec::new(), want));
        let me = st.me;
        let dests = st.universe.clone();
        st.net
            .multicast(me, dests, IsisMsg::Propose { local, payload });
        local
    }

    /// The ordered delivery stream.
    pub fn deliveries(&self) -> &crossbeam::channel::Receiver<Delivery> {
        &self.deliveries
    }

    /// Stop the member's protocol thread.
    pub fn stop(&self) {
        self.stop.store(true, AtomicOrdering::Relaxed);
    }

    /// Number of messages delivered so far.
    pub fn delivered_count(&self) -> u64 {
        self.state.lock().delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::time::Instant;

    fn collect_n(m: &IsisMember, n: usize, within: Duration) -> Vec<Delivery> {
        let deadline = Instant::now() + within;
        let mut out = Vec::new();
        while out.len() < n && Instant::now() < deadline {
            if let Ok(d) = m.deliveries().recv_timeout(Duration::from_millis(20)) {
                out.push(d);
            }
        }
        out
    }

    #[test]
    fn single_member() {
        let (g, ms) = IsisGroup::new(1, NetConfig::instant());
        ms[0].broadcast(Bytes::from_static(b"x"));
        let ds = collect_n(&ms[0], 1, Duration::from_secs(2));
        assert_eq!(ds.len(), 1);
        assert_eq!(ds[0].seq(), 1);
        g.shutdown();
    }

    #[test]
    fn three_members_agree_on_order() {
        let (g, ms) = IsisGroup::new(3, NetConfig::lan(Duration::from_micros(200)));
        let per = 20;
        for i in 0..per {
            for m in &ms {
                m.broadcast(Bytes::from(format!("{}-{}", m.host(), i)));
            }
        }
        let total = per * 3;
        let logs: Vec<Vec<Delivery>> = ms
            .iter()
            .map(|m| collect_n(m, total, Duration::from_secs(10)))
            .collect();
        for log in &logs {
            assert_eq!(log.len(), total);
        }
        assert_eq!(logs[0], logs[1]);
        assert_eq!(logs[1], logs[2]);
        g.shutdown();
    }

    #[test]
    fn exactly_once_under_concurrency() {
        let (g, ms) = IsisGroup::new(4, NetConfig::lan(Duration::from_micros(100)));
        let ms = Arc::new(ms);
        let per = 25;
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let ms = ms.clone();
                std::thread::spawn(move || {
                    for k in 0..per {
                        ms[i].broadcast(Bytes::from(format!("{i}:{k}")));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let ds = collect_n(&ms[0], per * 4, Duration::from_secs(10));
        let mut seen = HashSet::new();
        for d in &ds {
            if let Delivery::App { payload, .. } = d {
                assert!(seen.insert(payload.clone()));
            }
        }
        assert_eq!(seen.len(), per * 4);
        g.shutdown();
    }

    #[test]
    fn message_cost_is_3n() {
        let (g, ms) = IsisGroup::new(4, NetConfig::instant());
        g.net().stats().reset();
        ms[1].broadcast(Bytes::from_static(b"m"));
        let _ = collect_n(&ms[1], 1, Duration::from_secs(2));
        std::thread::sleep(Duration::from_millis(50));
        let (msgs, _) = g.net().stats().snapshot();
        // n propose + n propose-ts + n commit = 12 for n = 4.
        assert_eq!(msgs, 12);
        g.shutdown();
    }

    #[test]
    fn delivered_count_tracks() {
        let (g, ms) = IsisGroup::new(2, NetConfig::instant());
        ms[0].broadcast(Bytes::from_static(b"a"));
        let _ = collect_n(&ms[0], 1, Duration::from_secs(2));
        assert_eq!(ms[0].delivered_count(), 1);
        g.shutdown();
    }
}

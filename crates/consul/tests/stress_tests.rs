//! Randomized stress tests of the sequencer group: total-order agreement
//! and liveness under randomized crash/restart schedules.

use bytes::Bytes;
use consul_sim::{Delivery, HostId, NetConfig, SeqGroup, SeqMember};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Poll until both members report identical logs; assert on timeout.
/// Condition-based replacement for "sleep and hope they've converged".
fn assert_logs_converge(a: &SeqMember, b: &SeqMember, within: Duration) {
    let deadline = Instant::now() + within;
    loop {
        let (la, lb) = (a.log(), b.log());
        if la == lb {
            return;
        }
        if Instant::now() >= deadline {
            assert_eq!(la, lb, "logs did not converge within {within:?}");
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn drain_apps(m: &SeqMember, want: usize, within: Duration) -> Vec<(HostId, u64, Bytes)> {
    let deadline = Instant::now() + within;
    let mut out = Vec::new();
    while out.len() < want && Instant::now() < deadline {
        if let Ok(Delivery::App {
            origin,
            local,
            payload,
            ..
        }) = m.deliveries().recv_timeout(Duration::from_millis(20))
        {
            out.push((origin, local, payload));
        }
    }
    out
}

/// Agreement: many concurrent broadcasters with network jitter — every
/// member's app-record prefix is identical.
#[test]
fn total_order_agreement_under_jitter() {
    for seed in [1u64, 2, 3] {
        let cfg = NetConfig {
            latency: Duration::from_micros(150),
            jitter: Duration::from_micros(300),
            seed,
            ..NetConfig::default()
        };
        let (g, ms) = SeqGroup::new(4, cfg);
        let per = 30;
        std::thread::scope(|s| {
            for (i, m) in ms.iter().enumerate() {
                s.spawn(move || {
                    for k in 0..per {
                        m.broadcast(Bytes::from(format!("{i}:{k}")));
                    }
                });
            }
        });
        let want = per * 4;
        let logs: Vec<Vec<(HostId, u64, Bytes)>> = ms
            .iter()
            .map(|m| drain_apps(m, want, Duration::from_secs(10)))
            .collect();
        for (i, log) in logs.iter().enumerate() {
            assert_eq!(log.len(), want, "seed {seed} member {i} delivered all");
            assert_eq!(log, &logs[0], "seed {seed}: member {i} agrees");
        }
        g.shutdown();
    }
}

/// Liveness + safety under a randomized crash/restart schedule: the
/// surviving members keep agreeing, every survivor-submitted message is
/// delivered exactly once, and restarted members converge.
#[test]
fn random_crash_restart_schedule() {
    for seed in [11u64, 23, 47] {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, ms) = SeqGroup::new(4, NetConfig::instant());
        let mut members: Vec<Option<SeqMember>> = ms.into_iter().map(Some).collect();
        let mut alive = [true; 4];
        let mut sent: Vec<String> = Vec::new();

        for round in 0..6 {
            // Random traffic from live members (skip host 0 after it may
            // have died; any live member works).
            for _ in 0..5 {
                let i = rng.gen_range(0..4);
                if alive[i] {
                    let msg = format!("s{seed}-r{round}-{i}-{}", rng.gen::<u32>());
                    members[i]
                        .as_ref()
                        .unwrap()
                        .broadcast(Bytes::from(msg.clone()));
                    sent.push(msg);
                }
            }
            // Random fault action, keeping ≥2 alive.
            let live_count = alive.iter().filter(|a| **a).count();
            match rng.gen_range(0..3) {
                0 if live_count > 2 => {
                    let victims: Vec<usize> = (0..4).filter(|&i| alive[i]).collect();
                    let v = victims[rng.gen_range(0..victims.len())];
                    alive[v] = false;
                    g.crash(HostId(v as u32));
                }
                1 if live_count < 4 => {
                    let dead: Vec<usize> = (0..4).filter(|&i| !alive[i]).collect();
                    let v = dead[rng.gen_range(0..dead.len())];
                    alive[v] = true;
                    members[v] = Some(g.restart(HostId(v as u32)));
                }
                _ => {}
            }
            // Pacing between fault-schedule rounds (not a synchronization
            // point — convergence is verified by polling below).
            std::thread::sleep(Duration::from_millis(20));
        }
        // Compare logs of live members once they converge.
        let live: Vec<&SeqMember> = (0..4)
            .filter(|&i| alive[i])
            .map(|i| members[i].as_ref().unwrap())
            .collect();
        assert!(live.len() >= 2);
        for m in &live[1..] {
            assert_logs_converge(live[0], m, Duration::from_secs(5));
        }
        let reference = live[0].log();
        // Exactly-once for messages from members that are *still* alive
        // (a crashed member's in-flight submissions may legitimately be
        // lost with it).
        let delivered: Vec<String> = reference
            .iter()
            .filter_map(|r| match &r.body {
                consul_sim::RecordBody::App(p) => Some(String::from_utf8(p.to_vec()).unwrap()),
                _ => None,
            })
            .collect();
        let mut uniq = delivered.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), delivered.len(), "seed {seed}: no duplicates");
        g.shutdown();
    }
}

/// A member that falls behind via an induced gap catches up through the
/// NACK/retransmit path (exercised by crashing the coordinator while
/// traffic flows, with latency so records are in flight).
#[test]
fn gap_repair_after_failover() {
    let cfg = NetConfig {
        latency: Duration::from_millis(2),
        jitter: Duration::from_millis(1),
        detect_delay: Duration::from_millis(1),
        ..NetConfig::default()
    };
    let (g, ms) = SeqGroup::new(3, cfg);
    for i in 0..20 {
        ms[1].broadcast(Bytes::from(format!("a{i}")));
    }
    g.crash(HostId(0));
    for i in 0..20 {
        ms[2].broadcast(Bytes::from(format!("b{i}")));
    }
    // Everything submitted by live members must eventually deliver.
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if ms[1].delivered_count() >= 41 && ms[2].delivered_count() >= 41 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    // 40 app records + 1 fail record.
    assert!(ms[1].delivered_count() >= 41, "{}", ms[1].delivered_count());
    assert_eq!(ms[1].log(), ms[2].log());
    g.shutdown();
}

/// Batching under fire: crash the coordinator while three concurrent
/// submitters keep open batches in flight, then restart it. Every
/// survivor-submitted message must appear exactly once, in one total
/// order shared by the survivors and the rejoined host — a partially
/// acked batch must never be split, reordered, or double-applied.
#[test]
fn coordinator_crash_mid_batch_exactly_once() {
    for seed in [5u64, 17, 29] {
        let cfg = NetConfig {
            latency: Duration::from_millis(1),
            jitter: Duration::from_micros(500),
            detect_delay: Duration::from_millis(1),
            seed,
            ..NetConfig::default()
        };
        let batch = consul_sim::BatchConfig {
            window: Duration::from_millis(2),
            max_entries: 16,
            ..consul_sim::BatchConfig::default()
        };
        let (g, ms) = SeqGroup::new_with_batch(4, cfg, batch);
        let per = 25usize;
        std::thread::scope(|s| {
            for (i, m) in ms.iter().enumerate().skip(1) {
                s.spawn(move || {
                    for k in 0..per {
                        m.broadcast(Bytes::from(format!("s{seed}-h{i}-{k}")));
                        // Fast enough that submits land inside the same
                        // coalescing window.
                        std::thread::sleep(Duration::from_micros(300));
                    }
                });
            }
            // Kill the coordinator mid-stream, while batches are open
            // and ordered batch records are still in flight.
            let g = &g;
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(4));
                g.crash(HostId(0));
            });
        });
        let want = per * 3;
        // Survivors converge on a log holding every submission once.
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline {
            if ms[1..].iter().all(|m| {
                m.log()
                    .iter()
                    .filter(|r| matches!(r.body, consul_sim::RecordBody::App(_)))
                    .count()
                    >= want
            }) {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        for m in &ms[2..] {
            assert_logs_converge(&ms[1], m, Duration::from_secs(5));
        }
        let delivered: Vec<String> = ms[1]
            .log()
            .iter()
            .filter_map(|r| match &r.body {
                consul_sim::RecordBody::App(p) => Some(String::from_utf8(p.to_vec()).unwrap()),
                _ => None,
            })
            .collect();
        assert_eq!(delivered.len(), want, "seed {seed}: every submit delivered");
        let mut uniq = delivered.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), want, "seed {seed}: no duplicates");
        // Per-origin FIFO survives the failover resubmission path.
        for i in 1..4 {
            let from_i: Vec<&String> = delivered
                .iter()
                .filter(|m| m.starts_with(&format!("s{seed}-h{i}-")))
                .collect();
            let expect: Vec<String> = (0..per).map(|k| format!("s{seed}-h{i}-{k}")).collect();
            assert_eq!(
                from_i.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
                expect.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
                "seed {seed}: origin {i} FIFO order"
            );
        }
        // The restarted coordinator replays the same log, batch records
        // included, and converges with the survivors.
        let m0 = g.restart(HostId(0));
        assert_logs_converge(&ms[1], &m0, Duration::from_secs(10));
        g.shutdown();
    }
}

mod heartbeat_mode {
    use super::*;
    use consul_sim::Heartbeat;

    fn hb_config() -> NetConfig {
        NetConfig {
            latency: Duration::from_micros(100),
            heartbeats: Some(Heartbeat {
                period: Duration::from_millis(5),
                timeout: Duration::from_millis(40),
            }),
            ..NetConfig::default()
        }
    }

    /// With the oracle detector disabled, a crash is discovered from
    /// heartbeat silence alone, and exactly one Fail record is ordered.
    #[test]
    fn silence_is_detected_and_ordered_once() {
        let (g, ms) = SeqGroup::new(3, hb_config());
        ms[0].broadcast(Bytes::from_static(b"warm"));
        let deadline = Instant::now() + Duration::from_secs(5);
        while ms[2].delivered_count() < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        g.crash(HostId(2));
        // Wait for the survivors to order the failure.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let fails = ms[0]
                .log()
                .iter()
                .filter(|r| matches!(r.body, consul_sim::RecordBody::Fail(HostId(2))))
                .count();
            if fails >= 1 {
                assert_eq!(fails, 1, "exactly one Fail record");
                break;
            }
            assert!(Instant::now() < deadline, "failure never detected");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_logs_converge(&ms[0], &ms[1], Duration::from_secs(3));
        g.shutdown();
    }

    /// Coordinator crash detected by heartbeats: failover still works and
    /// post-crash traffic is ordered.
    #[test]
    fn heartbeat_coordinator_failover() {
        let (g, ms) = SeqGroup::new(3, hb_config());
        ms[1].broadcast(Bytes::from_static(b"pre"));
        let deadline = Instant::now() + Duration::from_secs(5);
        while ms[1].delivered_count() < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        g.crash(HostId(0));
        // New coordinator (host 1) must take over after detection.
        ms[2].broadcast(Bytes::from_static(b"post"));
        let deadline = Instant::now() + Duration::from_secs(8);
        loop {
            let has_post = ms[1]
                .log()
                .iter()
                .any(|r| matches!(&r.body, consul_sim::RecordBody::App(p) if &p[..] == b"post"));
            if has_post {
                break;
            }
            assert!(Instant::now() < deadline, "post-failover message lost");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_logs_converge(&ms[1], &ms[2], Duration::from_secs(3));
        g.shutdown();
    }

    /// Restart under heartbeat mode: the joiner is re-admitted via
    /// JoinReq/Snapshot and peers learn its liveness from its traffic.
    #[test]
    fn heartbeat_restart_rejoins() {
        let (g, ms) = SeqGroup::new(3, hb_config());
        ms[0].broadcast(Bytes::from_static(b"x"));
        g.crash(HostId(2));
        // Wait for the fail record.
        let deadline = Instant::now() + Duration::from_secs(5);
        while !ms[0]
            .log()
            .iter()
            .any(|r| matches!(r.body, consul_sim::RecordBody::Fail(HostId(2))))
        {
            assert!(Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(10));
        }
        let m2 = g.restart(HostId(2));
        m2.broadcast(Bytes::from_static(b"back"));
        let deadline = Instant::now() + Duration::from_secs(8);
        while !m2
            .log()
            .iter()
            .any(|r| matches!(&r.body, consul_sim::RecordBody::App(p) if &p[..] == b"back"))
        {
            assert!(Instant::now() < deadline, "rejoined member's message lost");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_logs_converge(&ms[0], &m2, Duration::from_secs(3));
        g.shutdown();
    }

    /// A member that is falsely suspected — its links frozen, process
    /// still alive — is ordered failed; when its traffic reappears the
    /// coordinator evicts it rather than letting it resume mid-stream
    /// with a stale cursor, and it re-admits itself through the
    /// JoinReq/Snapshot path. History is never forked.
    #[test]
    fn false_suspicion_is_evicted_then_readmitted() {
        let (g, ms) = SeqGroup::new(3, hb_config());
        ms[0].broadcast(Bytes::from_static(b"warm"));
        let deadline = Instant::now() + Duration::from_secs(5);
        while ms[2].delivered_count() < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Freeze, don't crash: the member's threads keep running but its
        // packets are dropped, so the survivors suspect it falsely.
        g.net().freeze(HostId(2));
        let deadline = Instant::now() + Duration::from_secs(5);
        while !ms[0]
            .log()
            .iter()
            .any(|r| matches!(r.body, consul_sim::RecordBody::Fail(HostId(2))))
        {
            assert!(Instant::now() < deadline, "false suspicion never ordered");
            std::thread::sleep(Duration::from_millis(10));
        }
        g.net().thaw(HostId(2));
        // The zombie's heartbeats resume; the coordinator answers with
        // an eviction and the member rejoins via snapshot.
        let deadline = Instant::now() + Duration::from_secs(8);
        while !ms[2]
            .log()
            .iter()
            .any(|r| matches!(r.body, consul_sim::RecordBody::Join(HostId(2))))
        {
            assert!(
                Instant::now() < deadline,
                "evicted member never re-admitted"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        // Post-rejoin traffic from the once-evicted member orders normally.
        ms[2].broadcast(Bytes::from_static(b"again"));
        let deadline = Instant::now() + Duration::from_secs(8);
        while !ms[0]
            .log()
            .iter()
            .any(|r| matches!(&r.body, consul_sim::RecordBody::App(p) if &p[..] == b"again"))
        {
            assert!(Instant::now() < deadline, "post-rejoin message lost");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_logs_converge(&ms[0], &ms[2], Duration::from_secs(3));
        g.shutdown();
    }
}

//! Throughput vs. batch window — the tuning curve behind the group
//! commit in the sequencer's submit path.
//!
//! Eight concurrent submitters hammer a 4-host cluster while the
//! coordinator's coalescing window sweeps {0 (off), 100µs, 1ms}. For
//! each point we report AGS throughput and *ordered multicasts per
//! AGS*: 1.000 with batching off (the classic one-record-per-AGS
//! protocol), strictly below 1 once concurrent submits coalesce.
//!
//! Besides the printed table, the run writes a `BENCH_msgs_per_ags.json`
//! artifact (to `$BENCH_MSGS_PER_AGS_JSON` or the working directory)
//! so CI can archive the curve.

use criterion::{criterion_group, criterion_main, Criterion};
use ftlinda::{Ags, Cluster, Operand, TsId};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const HOSTS: u32 = 4;
const SUBMITTERS: usize = 8;
const PER_SUBMITTER: usize = 150;

struct Point {
    window_us: u64,
    ags: u64,
    multicasts: u64,
    batches: u64,
    batch_entries: u64,
    ags_per_sec: f64,
}

/// Wait until physical message counters stop moving, so trailing
/// deliveries of the previous phase don't leak into the measurement.
fn wait_net_quiesced(cluster: &Cluster) {
    let deadline = Instant::now() + Duration::from_secs(2);
    let mut last = cluster.net_stats().0;
    let mut stable = 0;
    while Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
        let now = cluster.net_stats().0;
        if now == last {
            stable += 1;
            if stable >= 3 {
                return;
            }
        } else {
            stable = 0;
            last = now;
        }
    }
}

fn run_window(window: Duration) -> Point {
    // Checkpoint markers would perturb the multicast-per-AGS accounting;
    // measure the bare protocol.
    let mut b = Cluster::builder().hosts(HOSTS).no_checkpoints();
    if window.is_zero() {
        b = b.no_batching();
    } else {
        b = b.batch_window(window);
    }
    let (cluster, rts) = b.build();
    let ts: TsId = rts[0].create_stable_ts("main").unwrap();
    wait_net_quiesced(&cluster);
    cluster.order_stats().reset();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for i in 0..SUBMITTERS {
            let rt = &rts[i % rts.len()];
            s.spawn(move || {
                for k in 0..PER_SUBMITTER {
                    rt.execute(&Ags::out_one(
                        ts,
                        vec![Operand::cst("s"), Operand::cst(k as i64)],
                    ))
                    .unwrap();
                }
            });
        }
    });
    let secs = t0.elapsed().as_secs_f64();
    wait_net_quiesced(&cluster);
    let stats = cluster.order_stats();
    let point = Point {
        window_us: window.as_micros() as u64,
        ags: (SUBMITTERS * PER_SUBMITTER) as u64,
        multicasts: stats.ordered_multicasts(),
        batches: stats.batches(),
        batch_entries: stats.batch_entries(),
        ags_per_sec: (SUBMITTERS * PER_SUBMITTER) as f64 / secs,
    };
    cluster.shutdown();
    point
}

fn write_artifact(points: &[Point]) {
    // The window-sweep points run on an unsharded (K=1) cluster; the
    // `shard_sweep` bench contributes the `shard_sweep` section of the
    // same artifact, so update only this bench's keys.
    let mut json = String::from("[\n");
    for (i, p) in points.iter().enumerate() {
        let comma = if i + 1 < points.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"window_us\": {}, \"shards\": 1, \"ags\": {}, \
             \"ordered_multicasts\": {}, \
             \"batches\": {}, \"batch_entries\": {}, \"multicasts_per_ags\": {:.4}, \
             \"ags_per_sec\": {:.1}}}{comma}",
            p.window_us,
            p.ags,
            p.multicasts,
            p.batches,
            p.batch_entries,
            p.multicasts as f64 / p.ags as f64,
            p.ags_per_sec,
        );
    }
    json.push_str("  ]");
    let path = std::env::var("BENCH_MSGS_PER_AGS_JSON")
        .unwrap_or_else(|_| "BENCH_msgs_per_ags.json".into());
    linda_bench::update_artifact_sections(
        &path,
        &[
            ("bench", "\"msgs_per_ags\"".into()),
            ("hosts", HOSTS.to_string()),
            ("submitters", SUBMITTERS.to_string()),
            ("points", json),
        ],
    );
}

fn bench(c: &mut Criterion) {
    println!("\nThroughput vs batch window — {SUBMITTERS} submitters, {HOSTS} hosts:");
    println!(
        "    {:<12} {:>8} {:>12} {:>10} {:>16} {:>12}",
        "window", "AGSs", "multicasts", "batches", "multicasts/AGS", "AGS/sec"
    );
    let mut points = Vec::new();
    for window in [
        Duration::ZERO,
        Duration::from_micros(100),
        Duration::from_millis(1),
    ] {
        let p = run_window(window);
        println!(
            "    {:<12} {:>8} {:>12} {:>10} {:>16.3} {:>12.0}",
            if p.window_us == 0 {
                "off".to_string()
            } else {
                format!("{}us", p.window_us)
            },
            p.ags,
            p.multicasts,
            p.batches,
            p.multicasts as f64 / p.ags as f64,
            p.ags_per_sec,
        );
        if p.window_us == 0 {
            assert_eq!(p.multicasts, p.ags, "off: one ordered multicast per AGS");
        } else {
            assert!(
                p.multicasts < p.ags,
                "window {}us: coalescing must order fewer multicasts ({}) than AGSs ({})",
                p.window_us,
                p.multicasts,
                p.ags
            );
        }
        points.push(p);
    }
    println!();
    write_artifact(&points);

    // Criterion angle: end-to-end latency of one contended burst at each
    // window setting (dominated by the flush cadence).
    let mut g = c.benchmark_group("batch_window");
    g.sample_size(10).measurement_time(Duration::from_secs(2));
    for (label, window) in [
        ("off", Duration::ZERO),
        ("100us", Duration::from_micros(100)),
    ] {
        let mut b = Cluster::builder().hosts(HOSTS).no_checkpoints();
        if window.is_zero() {
            b = b.no_batching();
        } else {
            b = b.batch_window(window);
        }
        let (cluster, rts) = b.build();
        let ts = rts[0].create_stable_ts("bench").unwrap();
        g.bench_function(format!("burst8_{label}"), |bch| {
            bch.iter(|| {
                std::thread::scope(|s| {
                    for i in 0..SUBMITTERS {
                        let rt = &rts[i % rts.len()];
                        s.spawn(move || {
                            rt.execute(&Ags::out_one(
                                ts,
                                vec![Operand::cst("b"), Operand::cst(1i64)],
                            ))
                            .unwrap();
                        });
                    }
                });
            })
        });
        cluster.shutdown();
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

/root/repo/target/debug/deps/table1_ags_latency-6cf7153048084a85.d: crates/bench/benches/table1_ags_latency.rs Cargo.toml

/root/repo/target/debug/deps/libtable1_ags_latency-6cf7153048084a85.rmeta: crates/bench/benches/table1_ags_latency.rs Cargo.toml

crates/bench/benches/table1_ags_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

/root/repo/target/debug/deps/ablation_matching-67075c1901f3e954.d: crates/bench/benches/ablation_matching.rs

/root/repo/target/debug/deps/ablation_matching-67075c1901f3e954: crates/bench/benches/ablation_matching.rs

crates/bench/benches/ablation_matching.rs:

//! `LocalSpace`: a concurrent, in-process tuple space.
//!
//! This is classic Linda as a library: `out` deposits, `in`/`rd` block
//! until a match exists, `inp`/`rdp` are the non-blocking predicate forms,
//! and `eval` creates active tuples (processes whose results turn into
//! passive tuples). In FT-Linda terms this is a *scratch* (volatile,
//! host-local) tuple space; it also serves as the per-replica backing
//! store of stable tuple spaces.

use crate::store::{AdaptiveStore, Store, StoreConfig};
use linda_tuple::{Pattern, Tuple, Value};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

/// Error returned by blocking operations when the space is closed while
/// (or before) they wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpaceClosed;

impl std::fmt::Display for SpaceClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("tuple space closed")
    }
}

impl std::error::Error for SpaceClosed {}

struct SpaceState {
    store: AdaptiveStore,
    closed: bool,
}

struct Inner {
    state: Mutex<SpaceState>,
    cond: Condvar,
}

/// A shared, thread-safe local tuple space. Cloning the handle is cheap
/// and aliases the same space.
#[derive(Clone)]
pub struct LocalSpace {
    inner: Arc<Inner>,
}

impl Default for LocalSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalSpace {
    /// Create an empty space with the default [`StoreConfig`].
    pub fn new() -> Self {
        Self::with_store_config(StoreConfig::default())
    }

    /// Create an empty space with explicit matching-engine knobs. The
    /// backing store is adaptive: it starts as a linear scan and
    /// promotes to the indexed representation when the live probe
    /// figures say the space has become hot.
    pub fn with_store_config(cfg: StoreConfig) -> Self {
        LocalSpace {
            inner: Arc::new(Inner {
                state: Mutex::new(SpaceState {
                    store: AdaptiveStore::with_config(cfg),
                    closed: false,
                }),
                cond: Condvar::new(),
            }),
        }
    }

    /// Deposit a tuple (Linda `out`). Never blocks.
    pub fn out(&self, t: Tuple) {
        let mut st = self.inner.state.lock();
        st.store.insert(t);
        drop(st);
        self.inner.cond.notify_all();
    }

    /// Deposit many tuples under one lock acquisition.
    pub fn out_all<I: IntoIterator<Item = Tuple>>(&self, tuples: I) {
        let mut st = self.inner.state.lock();
        for t in tuples {
            st.store.insert(t);
        }
        drop(st);
        self.inner.cond.notify_all();
    }

    /// Blocking withdraw (Linda `in`): waits until a tuple matches `p`,
    /// removes and returns it. Returns `Err(SpaceClosed)` if the space is
    /// closed before a match appears.
    pub fn in_(&self, p: &Pattern) -> Result<Tuple, SpaceClosed> {
        let mut st = self.inner.state.lock();
        loop {
            let got = st.store.take(p);
            st.store.tick();
            if let Some(t) = got {
                return Ok(t);
            }
            if st.closed {
                return Err(SpaceClosed);
            }
            self.inner.cond.wait(&mut st);
        }
    }

    /// Blocking read (Linda `rd`): like [`LocalSpace::in_`] but leaves the
    /// tuple in place and returns a copy.
    pub fn rd(&self, p: &Pattern) -> Result<Tuple, SpaceClosed> {
        let mut st = self.inner.state.lock();
        loop {
            let got = st.store.read(p);
            st.store.tick();
            if let Some(t) = got {
                return Ok(t);
            }
            if st.closed {
                return Err(SpaceClosed);
            }
            self.inner.cond.wait(&mut st);
        }
    }

    /// Non-blocking withdraw (Linda `inp`). In a purely local space the
    /// boolean answer is trivially "strong": the store is observed under
    /// the lock.
    pub fn inp(&self, p: &Pattern) -> Option<Tuple> {
        let mut st = self.inner.state.lock();
        let got = st.store.take(p);
        st.store.tick();
        got
    }

    /// Non-blocking read (Linda `rdp`).
    pub fn rdp(&self, p: &Pattern) -> Option<Tuple> {
        let mut st = self.inner.state.lock();
        let got = st.store.read(p);
        st.store.tick();
        got
    }

    /// Blocking withdraw with a deadline. `None` on timeout,
    /// `Err(SpaceClosed)` if closed.
    pub fn in_timeout(&self, p: &Pattern, dur: Duration) -> Result<Option<Tuple>, SpaceClosed> {
        let deadline = std::time::Instant::now() + dur;
        let mut st = self.inner.state.lock();
        loop {
            let got = st.store.take(p);
            st.store.tick();
            if let Some(t) = got {
                return Ok(Some(t));
            }
            if st.closed {
                return Err(SpaceClosed);
            }
            if self.inner.cond.wait_until(&mut st, deadline).timed_out() {
                let got = st.store.take(p);
                st.store.tick();
                return Ok(got);
            }
        }
    }

    /// Blocking read with a deadline.
    pub fn rd_timeout(&self, p: &Pattern, dur: Duration) -> Result<Option<Tuple>, SpaceClosed> {
        let deadline = std::time::Instant::now() + dur;
        let mut st = self.inner.state.lock();
        loop {
            let got = st.store.read(p);
            st.store.tick();
            if let Some(t) = got {
                return Ok(Some(t));
            }
            if st.closed {
                return Err(SpaceClosed);
            }
            if self.inner.cond.wait_until(&mut st, deadline).timed_out() {
                let got = st.store.read(p);
                st.store.tick();
                return Ok(got);
            }
        }
    }

    /// Withdraw every tuple matching `p` (at-once, under one lock).
    pub fn take_all(&self, p: &Pattern) -> Vec<Tuple> {
        let mut st = self.inner.state.lock();
        let got = st.store.take_all(p);
        st.store.tick();
        got
    }

    /// Copy every tuple matching `p`.
    pub fn read_all(&self, p: &Pattern) -> Vec<Tuple> {
        let mut st = self.inner.state.lock();
        let got = st.store.read_all(p);
        st.store.tick();
        got
    }

    /// Number of tuples matching `p`.
    pub fn count(&self, p: &Pattern) -> usize {
        let mut st = self.inner.state.lock();
        let got = st.store.count(p);
        st.store.tick();
        got
    }

    /// Total number of tuples in the space.
    pub fn len(&self) -> usize {
        self.inner.state.lock().store.len()
    }

    /// Whether the space holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all tuples in insertion order.
    pub fn snapshot(&self) -> Vec<Tuple> {
        self.inner.state.lock().store.snapshot()
    }

    /// Cumulative matching-cost totals of the backing store.
    pub fn match_stats(&self) -> crate::MatchStats {
        self.inner.state.lock().store.match_stats()
    }

    /// Per-signature occupancy (with high-water marks), sorted by
    /// signature.
    pub fn signature_census(&self) -> Vec<crate::SignatureOccupancy> {
        self.inner.state.lock().store.signature_census()
    }

    /// Whether the adaptive backing store has promoted from the linear
    /// scan to the indexed representation.
    pub fn promoted(&self) -> bool {
        self.inner.state.lock().store.promoted()
    }

    /// Inventory of the backing store's derived acceleration structures
    /// (value indexes, miss cache).
    pub fn index_report(&self) -> crate::IndexReport {
        self.inner.state.lock().store.index_report()
    }

    /// Close the space: all current and future blocking calls return
    /// `Err(SpaceClosed)` once no match is available. Deposited tuples
    /// remain readable via the non-blocking operations.
    pub fn close(&self) {
        self.inner.state.lock().closed = true;
        self.inner.cond.notify_all();
    }

    /// Whether [`LocalSpace::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.state.lock().closed
    }

    /// Linda `eval` with a single computation: spawn a process that runs
    /// `f` and deposits its resulting tuple into this space when done.
    /// Returns a handle that can be joined.
    pub fn eval<F>(&self, f: F) -> EvalHandle
    where
        F: FnOnce() -> Tuple + Send + 'static,
    {
        let space = self.clone();
        EvalHandle {
            join: std::thread::spawn(move || {
                let t = f();
                space.out(t);
            }),
        }
    }

    /// Full Linda `eval` semantics: an *active tuple*. Each field is either
    /// an immediate value or a function; all functions run concurrently and
    /// when the last one finishes, the now-passive tuple is deposited.
    ///
    /// `eval("primes", 7, || is_prime(7))` from the Linda literature maps to
    /// two [`EvalField::Now`] fields and one [`EvalField::Later`].
    pub fn eval_active(&self, fields: Vec<EvalField>) -> EvalHandle {
        let space = self.clone();
        EvalHandle {
            join: std::thread::spawn(move || {
                let mut workers = Vec::new();
                let mut slots: Vec<Option<Value>> = Vec::with_capacity(fields.len());
                for (i, f) in fields.into_iter().enumerate() {
                    match f {
                        EvalField::Now(v) => slots.push(Some(v)),
                        EvalField::Later(func) => {
                            slots.push(None);
                            workers.push((i, std::thread::spawn(func)));
                        }
                    }
                }
                for (i, w) in workers {
                    // A panicking field poisons the whole active tuple:
                    // propagate so the EvalHandle join reports it.
                    let v = w.join().expect("active tuple field panicked");
                    slots[i] = Some(v);
                }
                space.out(Tuple::new(
                    slots.into_iter().map(|s| s.expect("slot filled")).collect(),
                ));
            }),
        }
    }
}

/// One field of an active tuple for [`LocalSpace::eval_active`].
pub enum EvalField {
    /// An already-evaluated value.
    Now(Value),
    /// A computation producing the field's value on its own thread.
    Later(Box<dyn FnOnce() -> Value + Send + 'static>),
}

impl EvalField {
    /// Convenience constructor for a computed field.
    pub fn later<F: FnOnce() -> Value + Send + 'static>(f: F) -> Self {
        EvalField::Later(Box::new(f))
    }
}

impl<V: Into<Value>> From<V> for EvalField {
    fn from(v: V) -> Self {
        EvalField::Now(v.into())
    }
}

/// Handle to a process created with `eval`.
pub struct EvalHandle {
    join: std::thread::JoinHandle<()>,
}

impl EvalHandle {
    /// Wait for the process to finish. Returns `Err` if it panicked.
    pub fn join(self) -> std::thread::Result<()> {
        self.join.join()
    }

    /// Whether the process has finished.
    pub fn is_finished(&self) -> bool {
        self.join.is_finished()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use linda_tuple::{pat, tuple};
    use std::time::Duration;

    #[test]
    fn out_then_in() {
        let ls = LocalSpace::new();
        ls.out(tuple!("x", 1));
        assert_eq!(ls.in_(&pat!("x", ?int)).unwrap(), tuple!("x", 1));
        assert!(ls.is_empty());
    }

    #[test]
    fn rd_leaves_tuple() {
        let ls = LocalSpace::new();
        ls.out(tuple!("x", 1));
        assert_eq!(ls.rd(&pat!("x", ?int)).unwrap(), tuple!("x", 1));
        assert_eq!(ls.len(), 1);
    }

    #[test]
    fn inp_rdp_nonblocking() {
        let ls = LocalSpace::new();
        assert_eq!(ls.inp(&pat!("x")), None);
        assert_eq!(ls.rdp(&pat!("x")), None);
        ls.out(tuple!("x"));
        assert_eq!(ls.rdp(&pat!("x")), Some(tuple!("x")));
        assert_eq!(ls.inp(&pat!("x")), Some(tuple!("x")));
        assert_eq!(ls.inp(&pat!("x")), None);
    }

    #[test]
    fn in_blocks_until_out() {
        let ls = LocalSpace::new();
        let ls2 = ls.clone();
        let waiter = std::thread::spawn(move || ls2.in_(&pat!("sig", ?int)).unwrap());
        std::thread::sleep(Duration::from_millis(20));
        ls.out(tuple!("sig", 9));
        assert_eq!(waiter.join().unwrap(), tuple!("sig", 9));
    }

    #[test]
    fn rd_blocks_until_out() {
        let ls = LocalSpace::new();
        let ls2 = ls.clone();
        let waiter = std::thread::spawn(move || ls2.rd(&pat!("sig")).unwrap());
        std::thread::sleep(Duration::from_millis(10));
        ls.out(tuple!("sig"));
        assert_eq!(waiter.join().unwrap(), tuple!("sig"));
        assert_eq!(ls.len(), 1);
    }

    #[test]
    fn competing_ins_get_distinct_tuples() {
        let ls = LocalSpace::new();
        let n = 8;
        let handles: Vec<_> = (0..n)
            .map(|_| {
                let ls = ls.clone();
                std::thread::spawn(move || ls.in_(&pat!("job", ?int)).unwrap())
            })
            .collect();
        for i in 0..n {
            ls.out(tuple!("job", i as i64));
        }
        let mut got: Vec<i64> = handles
            .into_iter()
            .map(|h| h.join().unwrap()[1].as_int().unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..n as i64).collect::<Vec<_>>());
        assert!(ls.is_empty());
    }

    #[test]
    fn in_timeout_expires() {
        let ls = LocalSpace::new();
        let r = ls
            .in_timeout(&pat!("never"), Duration::from_millis(30))
            .unwrap();
        assert_eq!(r, None);
    }

    #[test]
    fn in_timeout_succeeds() {
        let ls = LocalSpace::new();
        ls.out(tuple!("t"));
        let r = ls
            .in_timeout(&pat!("t"), Duration::from_millis(30))
            .unwrap();
        assert_eq!(r, Some(tuple!("t")));
    }

    #[test]
    fn rd_timeout_both_paths() {
        let ls = LocalSpace::new();
        assert_eq!(
            ls.rd_timeout(&pat!("t"), Duration::from_millis(10))
                .unwrap(),
            None
        );
        ls.out(tuple!("t"));
        assert_eq!(
            ls.rd_timeout(&pat!("t"), Duration::from_millis(10))
                .unwrap(),
            Some(tuple!("t"))
        );
        assert_eq!(ls.len(), 1);
    }

    #[test]
    fn close_wakes_blocked_in() {
        let ls = LocalSpace::new();
        let ls2 = ls.clone();
        let waiter = std::thread::spawn(move || ls2.in_(&pat!("none")));
        std::thread::sleep(Duration::from_millis(10));
        ls.close();
        assert_eq!(waiter.join().unwrap(), Err(SpaceClosed));
        assert!(ls.is_closed());
    }

    #[test]
    fn closed_space_still_serves_existing_matches() {
        let ls = LocalSpace::new();
        ls.out(tuple!("x"));
        ls.close();
        // A blocking call with an available match succeeds even when closed.
        assert_eq!(ls.in_(&pat!("x")).unwrap(), tuple!("x"));
        assert_eq!(ls.in_(&pat!("x")), Err(SpaceClosed));
    }

    #[test]
    fn out_all_and_take_all() {
        let ls = LocalSpace::new();
        ls.out_all((0..10).map(|i| tuple!("n", i)));
        assert_eq!(ls.count(&pat!("n", ?int)), 10);
        let taken = ls.take_all(&pat!("n", ?int));
        assert_eq!(taken.len(), 10);
        assert!(ls.is_empty());
    }

    #[test]
    fn read_all_copies() {
        let ls = LocalSpace::new();
        ls.out_all([tuple!("a", 1), tuple!("a", 2)]);
        assert_eq!(ls.read_all(&pat!("a", ?int)).len(), 2);
        assert_eq!(ls.len(), 2);
    }

    #[test]
    fn eval_deposits_result() {
        let ls = LocalSpace::new();
        let h = ls.eval(|| tuple!("result", 21 * 2));
        h.join().unwrap();
        assert_eq!(ls.inp(&pat!("result", ?int)), Some(tuple!("result", 42)));
    }

    #[test]
    fn eval_active_tuple_becomes_passive() {
        let ls = LocalSpace::new();
        let h = ls.eval_active(vec![
            EvalField::from("primes"),
            EvalField::from(7),
            EvalField::later(|| Value::Bool(7 % 2 == 1)),
        ]);
        // The tuple must not be visible until every field completes.
        h.join().unwrap();
        assert_eq!(
            ls.inp(&pat!("primes", ?int, ?bool)),
            Some(tuple!("primes", 7, true))
        );
    }

    #[test]
    fn eval_active_runs_fields_concurrently() {
        use std::sync::mpsc;
        let ls = LocalSpace::new();
        let (txa, rxa) = mpsc::channel::<()>();
        let (txb, rxb) = mpsc::channel::<()>();
        // Two fields that each wait for the other to start: only possible
        // if they really run on separate threads.
        let h = ls.eval_active(vec![
            EvalField::later(move || {
                txa.send(()).unwrap();
                rxb.recv().unwrap();
                Value::Int(1)
            }),
            EvalField::later(move || {
                txb.send(()).unwrap();
                rxa.recv().unwrap();
                Value::Int(2)
            }),
        ]);
        h.join().unwrap();
        assert_eq!(ls.inp(&pat!(?int, ?int)), Some(tuple!(1, 2)));
    }

    #[test]
    fn eval_handle_is_finished() {
        let ls = LocalSpace::new();
        let h = ls.eval(|| tuple!("done"));
        h.join().unwrap();
        assert_eq!(ls.rd(&pat!("done")).unwrap(), tuple!("done"));
    }

    #[test]
    fn space_closed_error_displays() {
        assert_eq!(SpaceClosed.to_string(), "tuple space closed");
    }

    #[test]
    fn hot_space_promotes_to_indexed() {
        let ls = LocalSpace::with_store_config(crate::StoreConfig {
            promote_min_tuples: 16,
            promote_after_probes: 8,
            ..Default::default()
        });
        ls.out_all((0..64).map(|i| tuple!("n", i)));
        assert!(!ls.promoted(), "writes alone never promote");
        // One expensive scan (the newest tuple is last in FIFO order)
        // trips the adaptive switch on the next tick.
        assert_eq!(ls.rdp(&pat!("n", 63)), Some(tuple!("n", 63)));
        assert!(ls.promoted());
        // Semantics unchanged after the switch.
        assert_eq!(ls.inp(&pat!("n", ?int)), Some(tuple!("n", 0)));
        assert_eq!(ls.len(), 63);
    }

    #[test]
    fn small_space_stays_linear() {
        let ls = LocalSpace::new();
        ls.out_all((0..8).map(|i| tuple!("n", i)));
        for i in 0..32 {
            ls.rdp(&pat!("n", i % 8));
        }
        assert!(!ls.promoted());
        assert_eq!(ls.index_report(), crate::IndexReport::default());
    }
}

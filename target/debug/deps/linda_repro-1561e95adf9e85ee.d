/root/repo/target/debug/deps/linda_repro-1561e95adf9e85ee.d: src/lib.rs

/root/repo/target/debug/deps/linda_repro-1561e95adf9e85ee: src/lib.rs

src/lib.rs:

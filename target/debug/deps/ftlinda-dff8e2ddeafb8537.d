/root/repo/target/debug/deps/ftlinda-dff8e2ddeafb8537.d: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/error.rs crates/core/src/runtime.rs crates/core/src/server.rs Cargo.toml

/root/repo/target/debug/deps/libftlinda-dff8e2ddeafb8537.rmeta: crates/core/src/lib.rs crates/core/src/cluster.rs crates/core/src/error.rs crates/core/src/runtime.rs crates/core/src/server.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/cluster.rs:
crates/core/src/error.rs:
crates/core/src/runtime.rs:
crates/core/src/server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

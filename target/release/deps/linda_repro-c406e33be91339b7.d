/root/repo/target/release/deps/linda_repro-c406e33be91339b7.d: src/lib.rs

/root/repo/target/release/deps/liblinda_repro-c406e33be91339b7.rlib: src/lib.rs

/root/repo/target/release/deps/liblinda_repro-c406e33be91339b7.rmeta: src/lib.rs

src/lib.rs:

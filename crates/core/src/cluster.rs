//! Cluster assembly and fault injection.
//!
//! A [`Cluster`] is the simulated network of workstations: it owns the
//! Consul group and hands out one [`Runtime`] per host. Crashing and
//! restarting hosts goes through the cluster, mirroring how the paper's
//! evaluation kills workstations under a running application.
//!
//! The cluster also runs a *digest-divergence detector*: a background
//! thread that periodically cross-checks [`Runtime::applied_digest`]
//! across live hosts. Replica application is deterministic, so two hosts
//! at the same applied sequence number must have identical digests; a
//! mismatch means replica state has diverged (a bug, or deliberate fault
//! injection in tests) and is surfaced as a `digest_divergence` event
//! plus a `ftlinda_digest_divergence_total` counter on
//! [`Cluster::obs`].
//!
//! Unless disabled, the cluster also runs one [`HttpExporter`] per member
//! serving `/metrics`, `/healthz`, `/events` and `/trace/<id>` (see
//! [`ClusterBuilder::http_base_port`]), and — when a flight directory is
//! configured — a monitor thread that dumps full observability state to
//! disk on `digest_divergence`, `coordinator_failover` and
//! `rejoin_failed` events ([`ClusterBuilder::flight_dir`]).

use crate::federation::{federate_metrics, federate_trace, MemberSource};
use crate::flight::{FlightRecorder, FlightSection};
use crate::runtime::{Runtime, RuntimeConfig};
use crate::server::{events_json_lines, http_post_metrics, ExporterSources, HttpExporter};
use consul_sim::{
    BatchConfig, CheckpointConfig, HostId, NetConfig, SeqGroup, SeqMember, TcpConfig, TcpMesh,
};
use ftlinda_kernel::StoreConfig;
use linda_tuple::Signature;
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Which wire the cluster's ordering traffic rides on.
///
/// `Sim` (the default) is the in-process simulated network every test and
/// experiment uses: all hosts live in one process, crashes and restarts
/// are injectable, latency is configurable. `Tcp` is a real deployment:
/// this process hosts exactly **one** member, speaking length-prefixed
/// frames over persistent TCP connections to its peers (each of which
/// runs its own process — see the `ftlinda-node` binary). Failure
/// detection over TCP is always heartbeat-based; a crash is a process
/// that died, and a restart is a process relaunched with `rejoin`.
#[derive(Debug, Clone)]
pub enum Transport {
    /// All hosts in-process over [`consul_sim::SimNet`].
    Sim,
    /// One member per process over real sockets.
    Tcp(TcpClusterConfig),
}

/// TCP deployment shape: who this process is and where everyone listens.
#[derive(Debug, Clone)]
pub struct TcpClusterConfig {
    /// This process's member id (an index into `addrs`).
    pub me: u32,
    /// Every member's sequencer address, ours included (we bind it).
    pub addrs: Vec<SocketAddr>,
    /// Boot outside the group and enter through the JoinReq → Snapshot
    /// rejoin path instead of assuming founding membership. Pass this
    /// when relaunching a member into a cluster that already ordered its
    /// failure.
    pub rejoin: bool,
}

/// Builder for a [`Cluster`].
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    hosts: u32,
    shards: u32,
    transport: Transport,
    net: NetConfig,
    divergence_period: Option<Duration>,
    batch: BatchConfig,
    ckpt: CheckpointConfig,
    http: bool,
    http_base_port: u16,
    flight_dir: Option<PathBuf>,
    starvation_after: Duration,
    introspection: bool,
    push: Option<(String, Duration)>,
    store: StoreConfig,
    store_overrides: Vec<(u64, StoreConfig)>,
    timeseries: Option<(Duration, usize)>,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder {
            hosts: 3,
            shards: 1,
            transport: Transport::Sim,
            net: NetConfig::instant(),
            divergence_period: Some(Duration::from_millis(10)),
            batch: BatchConfig::default(),
            ckpt: CheckpointConfig::default(),
            http: true,
            http_base_port: 0,
            flight_dir: None,
            starvation_after: Duration::from_secs(5),
            introspection: true,
            push: None,
            store: StoreConfig::default(),
            store_overrides: Vec::new(),
            timeseries: Some((Duration::from_secs(1), 512)),
        }
    }
}

impl ClusterBuilder {
    /// Number of hosts (replicas). The paper's prototype used 3 Sun-3s.
    pub fn hosts(mut self, n: u32) -> Self {
        self.hosts = n;
        self
    }

    /// Partition stable tuple spaces across `k` independently-sequenced
    /// replica groups, keyed by `(space, signature stable-hash)`. Every
    /// host replicates all `k` shards, but each shard runs its own
    /// sequencer, log and checkpoint stream, so statically single-shard
    /// AGSs (the overwhelmingly common case — see
    /// [`ftlinda_ags::static_keys`]) no longer contend for one total
    /// order. Cross-shard AGSs commit through the ordered three-leg
    /// protocol described in DESIGN.md §13. `k = 1` (the default) is the
    /// classic single-order deployment, wire-identical to pre-shard
    /// builds.
    pub fn shards(mut self, k: u32) -> Self {
        self.shards = k.max(1);
        self
    }

    /// Per-signature override of [`ClusterBuilder::store_config`]: tuples
    /// and patterns whose signature matches `sig` use `cfg` instead of
    /// the space-wide default, in every space on every host. Derived
    /// state only — never affects match results or replicated digests.
    pub fn store_config_for(mut self, sig: &Signature, cfg: StoreConfig) -> Self {
        let hash = sig.stable_hash();
        self.store_overrides.retain(|(s, _)| *s != hash);
        self.store_overrides.push((hash, cfg));
        self
    }

    /// Select the transport: in-process [`Transport::Sim`] (default) or
    /// one-member-per-process [`Transport::Tcp`]. Under TCP the builder's
    /// `hosts` count is taken from the address list, failure detection is
    /// always heartbeat-based ([`ClusterBuilder::heartbeats`] tunes it),
    /// and [`ClusterBuilder::build`] can fail to bind — use
    /// [`ClusterBuilder::try_build`].
    pub fn transport(mut self, t: Transport) -> Self {
        self.transport = t;
        self
    }

    /// Simulated network configuration (latency, jitter, detection delay).
    pub fn net(mut self, cfg: NetConfig) -> Self {
        self.net = cfg;
        self
    }

    /// LAN-like latency shortcut.
    pub fn latency(mut self, one_way: Duration) -> Self {
        self.net = NetConfig::lan(one_way);
        self
    }

    /// Use heartbeat-based failure detection instead of the simulated
    /// oracle detector: crashes are discovered from ping silence, as a
    /// real deployment would.
    pub fn heartbeats(mut self, period: Duration, timeout: Duration) -> Self {
        self.net.heartbeats = Some(consul_sim::Heartbeat { period, timeout });
        self
    }

    /// How often the divergence detector cross-checks replica digests.
    pub fn divergence_period(mut self, p: Duration) -> Self {
        self.divergence_period = Some(p);
        self
    }

    /// Disable the background divergence detector.
    pub fn no_divergence_detector(mut self) -> Self {
        self.divergence_period = None;
        self
    }

    /// Full group-commit configuration for the sequencer coordinator.
    pub fn batch(mut self, cfg: BatchConfig) -> Self {
        self.batch = cfg;
        self
    }

    /// Coalescing window for concurrent AGS submits at the coordinator
    /// (`Duration::ZERO` disables batching).
    pub fn batch_window(mut self, window: Duration) -> Self {
        self.batch.window = window;
        self
    }

    /// Flush an open batch as soon as it reaches `n` entries.
    pub fn batch_max_entries(mut self, n: usize) -> Self {
        self.batch.max_entries = n;
        self
    }

    /// Disable submit batching: every AGS is ordered with its own
    /// multicast, wire-identical to the pre-batching protocol.
    pub fn no_batching(mut self) -> Self {
        self.batch = BatchConfig::disabled();
        self
    }

    /// Flush an open batch once its payload bytes reach `n` (0 disables
    /// the byte trigger; entry-count and window triggers still apply).
    pub fn batch_max_bytes(mut self, n: usize) -> Self {
        self.batch.max_bytes = n;
        self
    }

    /// Order a checkpoint boundary roughly every `n` records. At each
    /// boundary every replica snapshots its kernel, the ordering layer
    /// truncates its log behind the boundary, and joiners/laggards are
    /// served the image plus only the log tail past it — rejoin cost is
    /// O(live state), not O(history). `0` disables checkpointing.
    pub fn checkpoint_every(mut self, n: u64) -> Self {
        self.ckpt.every = n;
        self
    }

    /// Keep taking periodic checkpoints but never truncate the log
    /// (joiners are still served the image; memory grows with history).
    /// Mostly useful for debugging compaction itself.
    pub fn no_compaction(mut self) -> Self {
        self.ckpt.compaction = false;
        self
    }

    /// Disable checkpointing entirely: rejoin replays the full ordered
    /// log from sequence 1, wire-identical to the pre-checkpoint
    /// protocol. Benchmarks with exact message-count assertions use this.
    pub fn no_checkpoints(mut self) -> Self {
        self.ckpt = CheckpointConfig::disabled();
        self
    }

    /// Do not start per-member HTTP exporters.
    pub fn no_http(mut self) -> Self {
        self.http = false;
        self
    }

    /// Base TCP port for the per-member HTTP exporters: host `i` serves
    /// on `127.0.0.1:(base + i)`. The default base of 0 gives every
    /// member an ephemeral port (resolve with [`Cluster::http_addr`]) —
    /// right for tests; a deployment picks a fixed base so scrape
    /// targets are predictable.
    pub fn http_base_port(mut self, base: u16) -> Self {
        self.http = true;
        self.http_base_port = base;
        self
    }

    /// Starvation-watchdog threshold: a blocked AGS older than this emits
    /// an `ags_starving` event (and again at every further multiple) and
    /// shows `"starving": true` in `/introspect`. Default 5 s;
    /// `Duration::ZERO` disables the watchdog.
    pub fn starvation_after(mut self, threshold: Duration) -> Self {
        self.starvation_after = threshold;
        self
    }

    /// Disable deep introspection: no per-signature occupancy/match-cost
    /// metric families, no starvation watchdog, and `/introspect` answers
    /// 404. The scalar pipeline metrics and all other endpoints remain.
    pub fn no_introspection(mut self) -> Self {
        self.introspection = false;
        self
    }

    /// Matching-engine tuning for every host's kernel: value-index
    /// promotion thresholds and the miss-cache capacity (see
    /// [`StoreConfig`]). Derived state only — it changes probe counts,
    /// never match results or the replicated digest, so hosts with
    /// different configs still converge.
    pub fn store_config(mut self, cfg: StoreConfig) -> Self {
        self.store = cfg;
        self
    }

    /// Push-gateway mode: every `interval`, POST each live member's
    /// Prometheus text to `url` + `/instance/<host>` (plus the cluster
    /// registry to `url` itself) instead of relying on scrapes. Failures
    /// are counted in `ftlinda_push_failures_total` on [`Cluster::obs`],
    /// never fatal.
    pub fn push_gateway(mut self, url: impl Into<String>, interval: Duration) -> Self {
        self.push = Some((url.into(), interval.max(Duration::from_millis(10))));
        self
    }

    /// Sampling interval of the in-memory metrics time-series ring
    /// (default 1 s). Every tick a background thread snapshots selected
    /// cluster gauges/counters — per-shard tuples, AGS totals, abort and
    /// retry counters, ordered multicasts, the load-imbalance gauge —
    /// into a bounded ring served as `/timeseries` on every member's
    /// exporter and included in flight-recorder dumps.
    pub fn timeseries_interval(mut self, interval: Duration) -> Self {
        let cap = self.timeseries.map_or(512, |(_, c)| c);
        self.timeseries = Some((interval.max(Duration::from_millis(10)), cap));
        self
    }

    /// Capacity of the time-series ring in snapshots (default 512). When
    /// full, the oldest snapshot is evicted; `/timeseries` reports how
    /// many were dropped.
    pub fn timeseries_capacity(mut self, cap: usize) -> Self {
        let interval = self.timeseries.map_or(Duration::from_secs(1), |(i, _)| i);
        self.timeseries = Some((interval, cap.max(2)));
        self
    }

    /// Disable the time-series sampler: no sampler thread, `/timeseries`
    /// answers 404, and the per-shard multicast/imbalance cluster gauges
    /// stay at their defaults.
    pub fn no_timeseries(mut self) -> Self {
        self.timeseries = None;
        self
    }

    /// Enable the flight recorder: on `digest_divergence`,
    /// `coordinator_failover` or `rejoin_failed` events, dump event
    /// rings, recent spans, order stats and per-member digests into
    /// `dir` (created if missing). Disabled by default.
    pub fn flight_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.flight_dir = Some(dir.into());
        self
    }

    /// Build the cluster and one runtime per host.
    ///
    /// # Panics
    ///
    /// Under [`Transport::Tcp`] building can genuinely fail (the listen
    /// address may be taken); this convenience panics on that error.
    /// Deployment binaries should call [`ClusterBuilder::try_build`].
    pub fn build(self) -> (Cluster, Vec<Runtime>) {
        self.try_build().expect("cluster transport failed to start")
    }

    /// Build the cluster, surfacing transport startup errors. Under
    /// [`Transport::Sim`] this never fails and returns one runtime per
    /// host; under [`Transport::Tcp`] it returns exactly one runtime —
    /// the local member's.
    pub fn try_build(self) -> std::io::Result<(Cluster, Vec<Runtime>)> {
        match self.transport.clone() {
            Transport::Sim => Ok(self.build_sim()),
            Transport::Tcp(tcp) => self.build_tcp(tcp),
        }
    }

    fn build_sim(self) -> (Cluster, Vec<Runtime>) {
        // One independent sequencer group (own simulated network, own
        // log, own checkpoint stream) per shard. Per-shard local-id
        // bases keep broadcast ids globally unique so one waiting table
        // serves all K streams; per-shard seeds decorrelate jitter.
        let mut groups: Vec<SeqGroup> = Vec::with_capacity(self.shards as usize);
        let mut members_per_host: Vec<Vec<SeqMember>> =
            (0..self.hosts).map(|_| Vec::new()).collect();
        for i in 0..self.shards.max(1) {
            let mut net = self.net.clone();
            net.seed = net.seed.wrapping_add(u64::from(i).wrapping_mul(7919));
            let (group, members) =
                SeqGroup::new_with_base(self.hosts, net, self.batch, self.ckpt, u64::from(i) << 48);
            groups.push(group);
            for (h, m) in members.into_iter().enumerate() {
                members_per_host[h].push(m);
            }
        }
        let run_cfg = RuntimeConfig {
            // no_introspection() also silences the watchdog: starvation
            // ages come from the same deep-accounting layer.
            starvation_after: (self.introspection && !self.starvation_after.is_zero())
                .then_some(self.starvation_after),
            introspection: self.introspection,
            store: self.store,
            store_overrides: self.store_overrides.clone(),
        };
        let runtimes: Vec<Runtime> = members_per_host
            .into_iter()
            .map(|ms| Runtime::with_members(ms, run_cfg.clone()))
            .collect();
        let by_host: HashMap<HostId, Runtime> =
            runtimes.iter().map(|rt| (rt.host(), rt.clone())).collect();
        let flight = self.flight_dir.clone().map(|dir| {
            Arc::new(FlightRecorder::new(dir).expect("create flight recorder directory"))
        });
        let timeseries = self
            .timeseries
            .map(|(_, cap)| Arc::new(linda_obs::TimeSeriesRing::with_capacity(cap)));
        let cluster = Cluster {
            groups,
            mesh: None,
            peer_http: Vec::new(),
            runtimes: Arc::new(Mutex::new(by_host)),
            obs: Arc::new(linda_obs::Registry::new()),
            stop: Arc::new(AtomicBool::new(false)),
            detector: Mutex::new(None),
            exporters: Mutex::new(HashMap::new()),
            flight,
            monitor: Mutex::new(None),
            pusher: Mutex::new(None),
            sampler: Mutex::new(None),
            timeseries,
            run_cfg,
        };
        self.start_services(&cluster);
        (cluster, runtimes)
    }

    /// One member of a multi-process TCP cluster: bind our listener,
    /// dial the peers, run one sequencer member per shard lane over the
    /// mesh, and wrap them in a single local [`Runtime`].
    fn build_tcp(self, tcp: TcpClusterConfig) -> std::io::Result<(Cluster, Vec<Runtime>)> {
        let shards = self.shards.max(1);
        let obs = Arc::new(linda_obs::Registry::new());
        let mut cfg = TcpConfig::new(HostId(tcp.me), &tcp.addrs, shards);
        if let Some(hb) = self.net.heartbeats {
            cfg.heartbeat = hb;
        }
        let (mesh, lane_rxs) = TcpMesh::start(cfg, &obs)?;
        let universe = mesh.universe();
        let me = mesh.me();
        let mut groups: Vec<SeqGroup> = Vec::with_capacity(shards as usize);
        let mut members: Vec<SeqMember> = Vec::with_capacity(shards as usize);
        for (i, rx) in lane_rxs.into_iter().enumerate() {
            let (group, member) = SeqGroup::tcp_member(
                mesh.lane(i as u32),
                universe.clone(),
                me,
                rx,
                self.batch,
                self.ckpt,
                (i as u64) << 48,
                !tcp.rejoin,
            );
            groups.push(group);
            members.push(member);
        }
        let run_cfg = RuntimeConfig {
            starvation_after: (self.introspection && !self.starvation_after.is_zero())
                .then_some(self.starvation_after),
            introspection: self.introspection,
            store: self.store,
            store_overrides: self.store_overrides.clone(),
        };
        let rt = Runtime::with_members(members, run_cfg.clone());
        let by_host: HashMap<HostId, Runtime> = [(me, rt.clone())].into_iter().collect();
        let flight = self.flight_dir.clone().map(|dir| {
            Arc::new(FlightRecorder::new(dir).expect("create flight recorder directory"))
        });
        let timeseries = self
            .timeseries
            .map(|(_, cap)| Arc::new(linda_obs::TimeSeriesRing::with_capacity(cap)));
        // Peer exporter addresses, derivable only under a fixed HTTP base
        // port: peer i's sequencer binds addrs[i], its exporter serves
        // the same interface at base + i. With an ephemeral base (tests)
        // the peers' ports are unknowable and federation stays local.
        let peer_http: Vec<(HostId, SocketAddr)> = if self.http && self.http_base_port != 0 {
            tcp.addrs
                .iter()
                .enumerate()
                .filter(|(i, _)| *i as u32 != tcp.me)
                .map(|(i, a)| {
                    (
                        HostId(i as u32),
                        SocketAddr::new(a.ip(), self.http_base_port.wrapping_add(i as u16)),
                    )
                })
                .collect()
        } else {
            Vec::new()
        };
        let cluster = Cluster {
            groups,
            mesh: Some(mesh),
            peer_http,
            runtimes: Arc::new(Mutex::new(by_host)),
            obs,
            stop: Arc::new(AtomicBool::new(false)),
            detector: Mutex::new(None),
            exporters: Mutex::new(HashMap::new()),
            flight,
            monitor: Mutex::new(None),
            pusher: Mutex::new(None),
            sampler: Mutex::new(None),
            timeseries,
            run_cfg,
        };
        self.start_services(&cluster);
        Ok((cluster, vec![rt]))
    }

    /// Background services common to both transports. The divergence
    /// detector and trace/metrics aggregation only see the runtimes in
    /// this process (all of them under Sim, just ours under TCP).
    fn start_services(&self, cluster: &Cluster) {
        if let Some(period) = self.divergence_period {
            cluster.spawn_detector(period);
        }
        if let Some((interval, _)) = self.timeseries {
            cluster.spawn_sampler(interval);
        }
        if self.http {
            cluster.spawn_exporters(self.http_base_port);
        }
        if cluster.flight.is_some() {
            cluster
                .spawn_flight_monitor(self.divergence_period.unwrap_or(Duration::from_millis(10)));
        }
        if let Some((url, interval)) = self.push.clone() {
            cluster.spawn_pusher(url, interval);
        }
    }
}

/// A running FT-Linda cluster over the simulated network.
pub struct Cluster {
    /// One ordering group per shard; `groups[0]` exists in every
    /// configuration and carries space creation.
    groups: Vec<SeqGroup>,
    /// The TCP mesh multiplexing every shard lane, when built with
    /// [`Transport::Tcp`] (`None` under Sim). Held for shutdown and
    /// per-link socket counters.
    mesh: Option<TcpMesh>,
    /// Peer members' HTTP exporter addresses — the federation targets
    /// for `/cluster/trace/<id>` and `/metrics/cluster`. Non-empty only
    /// under [`Transport::Tcp`] with a fixed
    /// [`ClusterBuilder::http_base_port`]; under Sim every member is in
    /// this process and federation needs no network.
    peer_http: Vec<(HostId, SocketAddr)>,
    /// Current runtime per host, replaced on restart so the divergence
    /// detector always samples the live incarnation.
    runtimes: Arc<Mutex<HashMap<HostId, Runtime>>>,
    /// Cluster-level registry: divergence counter + events.
    obs: Arc<linda_obs::Registry>,
    stop: Arc<AtomicBool>,
    detector: Mutex<Option<JoinHandle<()>>>,
    /// One HTTP exporter per member (empty when built with `no_http`).
    exporters: Mutex<HashMap<HostId, HttpExporter>>,
    /// Flight recorder, when a dump directory was configured.
    flight: Option<Arc<FlightRecorder>>,
    monitor: Mutex<Option<JoinHandle<()>>>,
    /// Push-gateway thread, when push mode was configured.
    pusher: Mutex<Option<JoinHandle<()>>>,
    /// Time-series sampler thread, unless `no_timeseries`.
    sampler: Mutex<Option<JoinHandle<()>>>,
    /// Bounded ring of periodic metric snapshots (`/timeseries`).
    timeseries: Option<Arc<linda_obs::TimeSeriesRing>>,
    /// Observability configuration every runtime (including restarted
    /// incarnations) is built with.
    run_cfg: RuntimeConfig,
}

impl Cluster {
    /// Start building a cluster.
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// Convenience: `n` hosts, zero-latency network.
    pub fn new(n: u32) -> (Cluster, Vec<Runtime>) {
        Cluster::builder().hosts(n).build()
    }

    fn spawn_detector(&self, period: Duration) {
        let runtimes = self.runtimes.clone();
        let obs = self.obs.clone();
        let stop = self.stop.clone();
        let net = self.groups[0].transport().clone();
        let shards = self.groups.len();
        let divergences = obs.counter(
            "ftlinda_digest_divergence_total",
            "Replica digest mismatches observed at equal applied sequence",
        );
        let handle = std::thread::Builder::new()
            .name("ftlinda-divergence".into())
            .spawn(move || {
                // (shard, seq) pairs already reported, so a persistent
                // divergence is surfaced once, not every tick.
                let mut reported: HashSet<(usize, u64)> = HashSet::new();
                while !stop.load(AtomicOrdering::Relaxed) {
                    std::thread::sleep(period);
                    let live: HashSet<HostId> = net.live_hosts().into_iter().collect();
                    // Divergence is a per-shard property: each shard's
                    // replicas apply that shard's ordered prefix, so
                    // equal (shard, seq) must imply equal digest. This
                    // never false-positives on replicas that merely lag.
                    for shard in 0..shards {
                        let samples: Vec<(HostId, u64, u64)> = {
                            let map = runtimes.lock();
                            map.iter()
                                .filter(|(h, _)| live.contains(h))
                                .map(|(h, rt)| {
                                    let (seq, dig) = rt.applied_digest_shard(shard);
                                    (*h, seq, dig)
                                })
                                .collect()
                        };
                        let mut by_seq: HashMap<u64, Vec<(HostId, u64)>> = HashMap::new();
                        for (h, seq, dig) in samples {
                            by_seq.entry(seq).or_default().push((h, dig));
                        }
                        for (seq, group) in by_seq {
                            if group.len() < 2 || reported.contains(&(shard, seq)) {
                                continue;
                            }
                            let first = group[0].1;
                            if group.iter().any(|(_, d)| *d != first) {
                                reported.insert((shard, seq));
                                divergences.inc();
                                let mut fields = vec![
                                    ("shard".to_string(), shard.to_string()),
                                    ("seq".to_string(), seq.to_string()),
                                ];
                                for (h, d) in &group {
                                    fields.push((format!("digest_h{}", h.0), format!("{d:#x}")));
                                }
                                obs.events()
                                    .emit(linda_obs::Event::new("digest_divergence", fields));
                            }
                        }
                    }
                }
            })
            .expect("spawn divergence detector");
        *self.detector.lock() = Some(handle);
    }

    /// Cluster-level observability registry: the divergence counter and
    /// `digest_divergence` events live here (per-host pipeline metrics
    /// live on each [`Runtime::obs`]).
    pub fn obs(&self) -> Arc<linda_obs::Registry> {
        self.obs.clone()
    }

    /// Render cluster-level metrics in Prometheus text format.
    pub fn metrics_text(&self) -> String {
        self.obs.render()
    }

    fn spawn_exporters(&self, base_port: u16) {
        let hosts: Vec<HostId> = {
            let mut hs: Vec<HostId> = self.runtimes.lock().keys().copied().collect();
            hs.sort_by_key(|h| h.0);
            hs
        };
        for host in hosts {
            let port = if base_port == 0 {
                0
            } else {
                base_port + host.0 as u16
            };
            // Every closure samples the runtimes map, not a pinned
            // Runtime, so endpoints keep reflecting the live incarnation
            // across crash/restart cycles (the exporter itself models an
            // out-of-process scrape sidecar and survives the simulated
            // crash).
            let runtimes = self.runtimes.clone();
            let metrics = {
                let runtimes = runtimes.clone();
                Arc::new(move || {
                    runtimes
                        .lock()
                        .get(&host)
                        .map(|rt| rt.metrics_text())
                        .unwrap_or_default()
                }) as Arc<dyn Fn() -> String + Send + Sync>
            };
            let health = {
                let runtimes = runtimes.clone();
                let net = self.groups[0].transport().clone();
                Arc::new(move || {
                    let live: HashSet<HostId> = net.live_hosts().into_iter().collect();
                    let map = runtimes.lock();
                    member_health_json(host, &live, map.get(&host))
                }) as Arc<dyn Fn() -> String + Send + Sync>
            };
            let events = {
                let runtimes = runtimes.clone();
                Arc::new(move || {
                    runtimes
                        .lock()
                        .get(&host)
                        .map(|rt| events_json_lines(&rt.obs().events().recent()))
                        .unwrap_or_default()
                }) as Arc<dyn Fn() -> String + Send + Sync>
            };
            // `/trace/<id>` and `/cluster/trace/<id>` serve the same
            // federated view: every in-process member's spans plus every
            // live peer process's `/spans/<id>`. Sources are built under
            // the lock (cheap clones) and the network is walked without
            // it, so a slow peer never blocks the runtimes map.
            let federated_trace = {
                let runtimes = runtimes.clone();
                let peer_http = self.peer_http.clone();
                let net = self.groups[0].transport().clone();
                Arc::new(move |id: linda_obs::TraceId| {
                    let sources = member_sources(&runtimes.lock(), &peer_http);
                    let live: HashSet<HostId> = net.live_hosts().into_iter().collect();
                    federate_trace(&sources, &live, id).to_json()
                }) as Arc<dyn Fn(linda_obs::TraceId) -> String + Send + Sync>
            };
            let trace = federated_trace.clone();
            let cluster_trace = federated_trace;
            // The federation leaf endpoints never fan out: `/spans/<id>`
            // and `/metrics/snapshot` serve only this member's state, so
            // a peer assembling its own cluster view can fetch them
            // without recursion.
            let spans = {
                let runtimes = runtimes.clone();
                Arc::new(move |id: linda_obs::TraceId| {
                    let map = runtimes.lock();
                    let mut spans: Vec<linda_obs::SpanRecord> = Vec::new();
                    let mut horizon: Option<u64> = None;
                    if let Some(rt) = map.get(&host) {
                        for obs in rt.obs_all() {
                            let log = obs.spans();
                            spans.extend(log.spans_of(id));
                            if let Some(h) = log.evicted_newest_micros() {
                                horizon = Some(horizon.map_or(h, |x| x.max(h)));
                            }
                        }
                    }
                    linda_obs::spans_wire(&spans, horizon)
                }) as Arc<dyn Fn(linda_obs::TraceId) -> String + Send + Sync>
            };
            let snapshot = {
                let runtimes = runtimes.clone();
                // Under TCP this process IS the member, so its leaf
                // snapshot carries the process-level cluster registry
                // too (mesh link counters, divergence counter); under
                // Sim the cluster registry is added once by whichever
                // federator serves the merged page.
                let obs = self.mesh.is_some().then(|| self.obs.clone());
                Arc::new(move || {
                    let member = runtimes.lock().get(&host).map(|rt| rt.metrics_snapshot());
                    match (&obs, member) {
                        (Some(obs), Some(m)) => {
                            let mut snap = obs.snapshot();
                            snap.merge(&m);
                            snap.to_wire()
                        }
                        (Some(obs), None) => obs.snapshot().to_wire(),
                        (None, Some(m)) => m.to_wire(),
                        (None, None) => linda_obs::Registry::new().snapshot().to_wire(),
                    }
                }) as Arc<dyn Fn() -> String + Send + Sync>
            };
            let introspect = {
                let runtimes = runtimes.clone();
                Arc::new(move || {
                    runtimes
                        .lock()
                        .get(&host)
                        .and_then(|rt| rt.introspect_json(HOT_SIGNATURES_TOP_K))
                }) as Arc<dyn Fn() -> Option<String> + Send + Sync>
            };
            let cluster_metrics = {
                let runtimes = runtimes.clone();
                let obs = self.obs.clone();
                let net = self.groups[0].transport().clone();
                let peer_http = self.peer_http.clone();
                Arc::new(move || {
                    let sources = member_sources(&runtimes.lock(), &peer_http);
                    let live: HashSet<HostId> = net.live_hosts().into_iter().collect();
                    federate_metrics(&sources, &live, &obs).render()
                }) as Arc<dyn Fn() -> String + Send + Sync>
            };
            let timeseries = {
                let ring = self.timeseries.clone();
                Arc::new(move || ring.as_ref().map(|r| r.to_json()))
                    as Arc<dyn Fn() -> Option<String> + Send + Sync>
            };
            match HttpExporter::spawn(
                port,
                ExporterSources {
                    metrics,
                    health,
                    events,
                    trace,
                    introspect,
                    cluster_metrics,
                    timeseries,
                    snapshot,
                    spans,
                    cluster_trace,
                },
            ) {
                Ok(exp) => {
                    self.exporters.lock().insert(host, exp);
                }
                Err(e) => {
                    // A busy fixed port shouldn't take the cluster down;
                    // surface it as an event instead.
                    self.obs.events().emit(linda_obs::Event::new(
                        "http_exporter_failed",
                        vec![
                            ("host".into(), host.0.to_string()),
                            ("port".into(), port.to_string()),
                            ("error".into(), e.to_string()),
                        ],
                    ));
                }
            }
        }
    }

    /// The HTTP exporter address of `host` (`None` when HTTP is disabled
    /// or the exporter failed to bind).
    pub fn http_addr(&self, host: HostId) -> Option<SocketAddr> {
        self.exporters.lock().get(&host).map(|e| e.addr())
    }

    /// Assemble the cluster-wide span tree for one AGS — the same view
    /// `/trace/<id>` and `/cluster/trace/<id>` serve over HTTP. Every
    /// member in this process contributes its span logs directly; under
    /// [`Transport::Tcp`] with a fixed HTTP base port, every live peer
    /// process is additionally scraped at `/spans/<id>` and its spans
    /// merged in with per-host attribution.
    /// [`linda_obs::TraceTree::truncated`] is set when any member's span
    /// ring has already evicted spans recent enough to belong to this
    /// trace, and live peers that could not be reached are listed in
    /// [`linda_obs::TraceTree::truncated_hosts`] — an incomplete tree is
    /// never silently presented as the whole story.
    pub fn trace(&self, id: linda_obs::TraceId) -> linda_obs::TraceTree {
        let sources = member_sources(&self.runtimes.lock(), &self.peer_http);
        let live: HashSet<HostId> = self.groups[0]
            .transport()
            .live_hosts()
            .into_iter()
            .collect();
        federate_trace(&sources, &live, id)
    }

    /// One Prometheus text page for the whole group: the cluster
    /// registry (divergence counter, push counters) merged with every
    /// *live* member's registry — counters/gauges/family children sum,
    /// histograms merge bucket-wise. Under [`Transport::Tcp`] the live
    /// peers' registries are fetched over `/metrics/snapshot`, so the
    /// page has the same shape as the in-process Sim one. Served as
    /// `/metrics/cluster` on every member's exporter.
    pub fn cluster_metrics_text(&self) -> String {
        let sources = member_sources(&self.runtimes.lock(), &self.peer_http);
        let live: HashSet<HostId> = self.groups[0]
            .transport()
            .live_hosts()
            .into_iter()
            .collect();
        federate_metrics(&sources, &live, &self.obs).render()
    }

    fn spawn_pusher(&self, url: String, interval: Duration) {
        let runtimes = self.runtimes.clone();
        let obs = self.obs.clone();
        let net = self.groups[0].transport().clone();
        let stop = self.stop.clone();
        let pushes = obs.counter(
            "ftlinda_pushes_total",
            "Successful metric pushes to the configured push gateway",
        );
        let failures = obs.counter(
            "ftlinda_push_failures_total",
            "Metric pushes the push gateway refused or never received",
        );
        let handle = std::thread::Builder::new()
            .name("ftlinda-push".into())
            .spawn(move || {
                while !stop.load(AtomicOrdering::Relaxed) {
                    std::thread::sleep(interval);
                    // Snapshot the texts first so no lock is held during
                    // network I/O.
                    let live: HashSet<HostId> = net.live_hosts().into_iter().collect();
                    let pages: Vec<(String, String)> = {
                        let map = runtimes.lock();
                        let mut hosts: Vec<&HostId> = map.keys().collect();
                        hosts.sort_by_key(|h| h.0);
                        let mut pages: Vec<(String, String)> = hosts
                            .into_iter()
                            .filter(|h| live.contains(h))
                            .map(|h| {
                                (
                                    format!("{}/instance/{}", url.trim_end_matches('/'), h.0),
                                    map[h].metrics_text(),
                                )
                            })
                            .collect();
                        // The base-URL page is the merged cluster view,
                        // not the bare cluster registry: merging keeps
                        // the members' shard-labeled family children, so
                        // the gateway sees the same per-shard series as
                        // /metrics/cluster.
                        pages.push((
                            url.trim_end_matches('/').to_string(),
                            aggregate_metrics(&map, &obs, &live),
                        ));
                        pages
                    };
                    for (target, body) in pages {
                        match http_post_metrics(&target, &body) {
                            Ok(status) if (200..300).contains(&status) => pushes.inc(),
                            Ok(status) => {
                                failures.inc();
                                obs.events().emit(linda_obs::Event::new(
                                    "push_failed",
                                    vec![
                                        ("target".into(), target),
                                        ("status".into(), status.to_string()),
                                    ],
                                ));
                            }
                            Err(e) => {
                                failures.inc();
                                obs.events().emit(linda_obs::Event::new(
                                    "push_failed",
                                    vec![
                                        ("target".into(), target),
                                        ("error".into(), e.to_string()),
                                    ],
                                ));
                            }
                        }
                    }
                }
            })
            .expect("spawn push gateway thread");
        *self.pusher.lock() = Some(handle);
    }

    /// Time-series sampler: every `interval`, refresh the cluster-level
    /// per-shard gauges (ordered multicasts per lane, tuple-load
    /// imbalance) and append one snapshot of the selected series to the
    /// bounded ring served as `/timeseries`.
    fn spawn_sampler(&self, interval: Duration) {
        let Some(ring) = self.timeseries.clone() else {
            return;
        };
        let runtimes = self.runtimes.clone();
        let obs = self.obs.clone();
        let net = self.groups[0].transport().clone();
        // Per-shard ordered-multicast counts are sampled from the
        // sequencer groups directly: OrderStats is ONE object per group,
        // so reading it here avoids multiplying by the replica count the
        // way a per-member mirror would under snapshot merging.
        let stats: Vec<Arc<consul_sim::OrderStats>> =
            self.groups.iter().map(|g| g.stats_handle()).collect();
        let stop = self.stop.clone();
        let shard_multicasts = obs.gauge_family(
            "ftlinda_shard_multicasts_total",
            "Ordered multicasts issued on each shard's sequencer lane (sampled)",
        );
        let imbalance = obs.gauge_merged(
            "ftlinda_shard_imbalance_bp",
            "Heaviest shard's excess tuple share in basis points (0 even, 10000 one shard)",
            linda_obs::GaugeMerge::Max,
        );
        let handle = std::thread::Builder::new()
            .name("ftlinda-timeseries".into())
            .spawn(move || {
                while !stop.load(AtomicOrdering::Relaxed) {
                    std::thread::sleep(interval);
                    for (i, s) in stats.iter().enumerate() {
                        shard_multicasts
                            .with(&[("shard", &i.to_string())])
                            .set(i64::try_from(s.ordered_multicasts()).unwrap_or(i64::MAX));
                    }
                    let live: HashSet<HostId> = net.live_hosts().into_iter().collect();
                    // Local-only federation: the sampler must never pay
                    // a peer connect timeout on its 1 s tick.
                    let snap = {
                        let map = runtimes.lock();
                        federate_metrics(&member_sources(&map, &[]), &live, &obs)
                    };
                    // Tuple loads per shard, summed over replicas — the
                    // replication factor is uniform, so the imbalance
                    // ratio is unchanged by the sum.
                    let loads: Vec<u64> = snap
                        .gauge_family("ftlinda_shard_tuples")
                        .map(|children| children.values().map(|v| (*v).max(0) as u64).collect())
                        .unwrap_or_default();
                    imbalance.set(ftlinda_ags::imbalance_bp(&loads));
                    let mut values = snap.series(
                        &[
                            "ftlinda_ags_completions_total",
                            "ftlinda_stable_tuples",
                            "ftlinda_blocked_ags",
                            "ftlinda_ags_starving_total",
                        ],
                        &[
                            "ftlinda_shard_tuples",
                            "ftlinda_shard_ags_total",
                            "ftlinda_shard_multicasts_total",
                            "ftlinda_xcommit_aborts_total",
                            "ftlinda_xcommit_retries_total",
                            "ftlinda_xlock_buffered_total",
                        ],
                    );
                    values.push((
                        "ftlinda_shard_imbalance_bp".to_string(),
                        ftlinda_ags::imbalance_bp(&loads),
                    ));
                    ring.sample(values);
                }
            })
            .expect("spawn time-series sampler");
        *self.sampler.lock() = Some(handle);
    }

    /// The in-memory metrics time-series ring, unless disabled with
    /// [`ClusterBuilder::no_timeseries`]. Serialized as `/timeseries` on
    /// every member's exporter.
    pub fn timeseries(&self) -> Option<Arc<linda_obs::TimeSeriesRing>> {
        self.timeseries.clone()
    }

    /// The flight-recorder dump directory, when one was configured.
    pub fn flight_dir(&self) -> Option<PathBuf> {
        self.flight.as_ref().map(|f| f.dir().to_path_buf())
    }

    /// Dump full observability state to the flight directory now.
    /// Returns `None` when no flight directory was configured. The
    /// monitor thread calls this automatically on trigger events; tests
    /// and operators can force a dump.
    pub fn flight_dump(&self, reason: &str) -> Option<std::io::Result<PathBuf>> {
        let flight = self.flight.as_ref()?;
        let live: Vec<HostId> = self.groups[0].transport().live_hosts();
        let sections = flight_sections(
            &self.runtimes.lock(),
            &self.obs,
            self.groups[0].stats(),
            &live,
            self.timeseries.as_deref(),
        );
        Some(flight.dump(reason, &sections))
    }

    fn spawn_flight_monitor(&self, period: Duration) {
        let Some(flight) = self.flight.clone() else {
            return;
        };
        let runtimes = self.runtimes.clone();
        let obs = self.obs.clone();
        let stats = self.groups[0].stats_handle();
        let net = self.groups[0].transport().clone();
        let stop = self.stop.clone();
        let ring = self.timeseries.clone();
        let handle = std::thread::Builder::new()
            .name("ftlinda-flight".into())
            .spawn(move || {
                // Last-seen event counts per (scope, kind); a count that
                // grows triggers a dump, a count that shrinks means the
                // source registry was replaced (host restart) and resets
                // the baseline.
                let mut seen: HashMap<(u32, &'static str), usize> = HashMap::new();
                const CLUSTER: u32 = u32::MAX;
                while !stop.load(AtomicOrdering::Relaxed) {
                    std::thread::sleep(period);
                    let mut fire: Option<&'static str> = None;
                    let mut check = |key: (u32, &'static str), count: usize| {
                        let last = seen.entry(key).or_insert(0);
                        if count > *last {
                            fire = Some(key.1);
                        }
                        *last = count;
                    };
                    check(
                        (CLUSTER, "digest_divergence"),
                        obs.events().recent_of("digest_divergence").len(),
                    );
                    {
                        let map = runtimes.lock();
                        for (h, rt) in map.iter() {
                            for kind in ["coordinator_failover", "rejoin_failed"] {
                                check((h.0, kind), rt.obs().events().recent_of(kind).len());
                            }
                        }
                    }
                    if let Some(reason) = fire {
                        let live: Vec<HostId> = net.live_hosts();
                        let sections =
                            flight_sections(&runtimes.lock(), &obs, &stats, &live, ring.as_deref());
                        let _ = flight.dump(reason, &sections);
                    }
                }
            })
            .expect("spawn flight monitor");
        *self.monitor.lock() = Some(handle);
    }

    /// Crash a host (fail-silent). Every surviving replica will deposit a
    /// `("failure", host)` tuple into each stable TS once the failure is
    /// detected and ordered.
    pub fn crash(&self, host: HostId) {
        for group in &self.groups {
            group.crash(host);
        }
    }

    /// Restart a crashed host. The fresh runtime replays the ordered log
    /// and converges to the surviving replicas' state; a `Join` record is
    /// ordered into the stream.
    pub fn restart(&self, host: HostId) -> Runtime {
        // The fresh incarnation keeps the cluster's observability
        // configuration (watchdog threshold, introspection switch).
        let members: Vec<SeqMember> = self.groups.iter().map(|g| g.restart(host)).collect();
        let rt = Runtime::with_members(members, self.run_cfg.clone());
        self.runtimes.lock().insert(host, rt.clone());
        rt
    }

    /// Network statistics (physical messages/bytes) — experiment E9.
    /// Summed over all shards' simulated networks; under TCP the shard
    /// lanes share one mesh, whose socket-level counters this reports.
    pub fn net_stats(&self) -> (u64, u64) {
        if let Some(mesh) = &self.mesh {
            return mesh.stats().snapshot();
        }
        self.groups.iter().fold((0, 0), |(m, b), g| {
            let (gm, gb) = g.transport().stats_snapshot();
            (m + gm, b + gb)
        })
    }

    /// Reset network statistics between measurement phases.
    pub fn reset_net_stats(&self) {
        if let Some(mesh) = &self.mesh {
            mesh.stats().reset();
            return;
        }
        for group in &self.groups {
            group.transport().reset_stats();
        }
    }

    /// Hosts currently considered live by the failure detector (the
    /// oracle under Sim, heartbeat reachability under TCP). A TCP member
    /// that has not yet connected to any peer reports only itself.
    pub fn live_hosts(&self) -> Vec<HostId> {
        self.groups[0].transport().live_hosts()
    }

    /// Number of shards (independent ordering groups) in this cluster.
    pub fn shard_count(&self) -> usize {
        self.groups.len()
    }

    /// Ordering-layer statistics (shard 0's group; see
    /// [`Cluster::order_stats_shard`]).
    pub fn order_stats(&self) -> &consul_sim::OrderStats {
        self.groups[0].stats()
    }

    /// Ordering-layer statistics of one shard's group.
    pub fn order_stats_shard(&self, shard: usize) -> &consul_sim::OrderStats {
        self.groups[shard].stats()
    }

    /// The group-commit configuration the sequencer runs with.
    pub fn batch_config(&self) -> BatchConfig {
        self.groups[0].batch_config()
    }

    /// The checkpoint/compaction configuration the sequencer runs with.
    pub fn checkpoint_config(&self) -> CheckpointConfig {
        self.groups[0].checkpoint_config()
    }

    /// Tear everything down (idempotent).
    pub fn shutdown(&self) {
        self.stop.store(true, AtomicOrdering::Relaxed);
        if let Some(h) = self.detector.lock().take() {
            let _ = h.join();
        }
        if let Some(h) = self.monitor.lock().take() {
            let _ = h.join();
        }
        if let Some(h) = self.pusher.lock().take() {
            let _ = h.join();
        }
        if let Some(h) = self.sampler.lock().take() {
            let _ = h.join();
        }
        for (_, mut exp) in self.exporters.lock().drain() {
            exp.stop();
        }
        for rt in self.runtimes.lock().values() {
            rt.shutdown();
        }
        for group in &self.groups {
            group.shutdown();
        }
        if let Some(mesh) = &self.mesh {
            mesh.shutdown();
        }
    }
}

/// How many hot signatures `/introspect` lists cluster-wide.
const HOT_SIGNATURES_TOP_K: usize = 10;

/// Every member as a federation source: the runtimes in this process
/// directly, plus one remote source per known peer exporter (TCP with a
/// fixed HTTP base; peers already present locally are not duplicated).
fn member_sources(
    runtimes: &HashMap<HostId, Runtime>,
    peer_http: &[(HostId, SocketAddr)],
) -> Vec<MemberSource> {
    let mut out: Vec<MemberSource> = runtimes
        .values()
        .cloned()
        .map(MemberSource::Local)
        .collect();
    for (h, addr) in peer_http {
        if !runtimes.contains_key(h) {
            out.push(MemberSource::Remote {
                host: *h,
                http: *addr,
            });
        }
    }
    out.sort_by_key(|s| s.host().0);
    out
}

/// Merge the cluster registry with every live member's registry into one
/// Prometheus text page. Local-only (no peer scraping): the sampler and
/// pusher run on tight periodic loops where a dead peer's connect
/// timeout would stall the tick, so they federate over in-process
/// sources; the scrape-time pages ([`Cluster::cluster_metrics_text`])
/// fan out to peers.
fn aggregate_metrics(
    runtimes: &HashMap<HostId, Runtime>,
    obs: &linda_obs::Registry,
    live: &HashSet<HostId>,
) -> String {
    federate_metrics(&member_sources(runtimes, &[]), live, obs).render()
}

/// The `/healthz` JSON for one member: liveness, applied position,
/// digest, blocked-AGS count and any rejoin failure.
fn member_health_json(host: HostId, live: &HashSet<HostId>, rt: Option<&Runtime>) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"host\":{},\"live\":{},\"view\":[",
        host.0,
        live.contains(&host)
    ));
    let mut view: Vec<u32> = live.iter().map(|h| h.0).collect();
    view.sort_unstable();
    for (i, h) in view.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&h.to_string());
    }
    out.push(']');
    match rt {
        Some(rt) => {
            let (seq, dig) = rt.applied_digest();
            out.push_str(&format!(
                ",\"applied_seq\":{seq},\"digest\":\"{dig:#018x}\",\"blocked\":{}",
                rt.blocked_len()
            ));
            match rt.checkpoint_seq() {
                Some(cs) => out.push_str(&format!(",\"checkpoint_seq\":{cs}")),
                None => out.push_str(",\"checkpoint_seq\":null"),
            }
            out.push_str(&format!(",\"log_base\":{}", rt.log_base()));
            match rt.rejoin_error() {
                Some(e) => out.push_str(&format!(
                    ",\"rejoin_error\":\"{}\"",
                    linda_obs::json_escape(&e)
                )),
                None => out.push_str(",\"rejoin_error\":null"),
            }
        }
        None => out.push_str(",\"applied_seq\":null"),
    }
    out.push_str("}\n");
    out
}

/// The sections of one flight-recorder dump: per-member event ring,
/// span log and applied digest, plus cluster-level events and
/// ordering-layer counters.
fn flight_sections(
    runtimes: &HashMap<HostId, Runtime>,
    obs: &linda_obs::Registry,
    stats: &consul_sim::OrderStats,
    live: &[HostId],
    timeseries: Option<&linda_obs::TimeSeriesRing>,
) -> Vec<FlightSection> {
    let live_set: HashSet<HostId> = live.iter().copied().collect();
    let mut hosts: Vec<HostId> = runtimes.keys().copied().collect();
    hosts.sort_by_key(|h| h.0);
    let mut sections = Vec::new();
    for h in hosts {
        let rt = &runtimes[&h];
        sections.push(FlightSection::new(
            format!("state host={}", h.0),
            member_health_json(h, &live_set, Some(rt)),
        ));
        sections.push(FlightSection::new(
            format!("events host={}", h.0),
            events_json_lines(&rt.obs().events().recent()),
        ));
        let mut spans = String::new();
        for s in rt.obs().spans().recent() {
            spans.push_str(&linda_obs::span_json(&s));
            spans.push('\n');
        }
        sections.push(FlightSection::new(format!("spans host={}", h.0), spans));
    }
    sections.push(FlightSection::new(
        "cluster events",
        events_json_lines(&obs.events().recent()),
    ));
    sections.push(FlightSection::new(
        "order stats",
        format!(
            "broadcasts={} delivered={} view_changes={} retransmits={} \
             ordered_multicasts={} batches={} batch_entries={}\n",
            stats.broadcasts(),
            stats.delivered(),
            stats.view_changes(),
            stats.retransmits(),
            stats.ordered_multicasts(),
            stats.batches(),
            stats.batch_entries()
        ),
    ));
    if let Some(ring) = timeseries {
        sections.push(FlightSection::new("timeseries", ring.to_json()));
    }
    sections
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

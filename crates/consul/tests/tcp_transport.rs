//! The TCP transport against real sockets: frame reassembly across
//! arbitrary write boundaries, and hostile byte streams from untrusted
//! peers (truncation, garbage, oversized length claims). Every test
//! drives a live [`TcpMesh`] over loopback — nothing is mocked.

use bytes::Bytes;
use consul_sim::{HostId, NetEvent, SeqMsg, TcpConfig, TcpMesh};
use linda_obs::Registry;
use proptest::prelude::*;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

fn free_addrs(n: usize) -> Vec<SocketAddr> {
    (0..n)
        .map(|_| {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        })
        .collect()
}

/// A complete wire frame for lane 0 carrying `msg`, as a cooperating
/// peer would produce it: `[u32 BE body length][uvarint lane][SeqMsg]`.
fn frame(msg: &SeqMsg) -> Vec<u8> {
    let mut body = vec![0x00]; // uvarint lane 0
    body.extend_from_slice(&consul_sim::encode_seq_msg(msg));
    let mut f = (body.len() as u32).to_be_bytes().to_vec();
    f.extend_from_slice(&body);
    f
}

/// Handshake bytes claiming to be member `id`.
fn hello(id: u32) -> Vec<u8> {
    let mut h = b"FTL1".to_vec();
    h.extend_from_slice(&id.to_be_bytes());
    h
}

/// Start a single-lane mesh as member 0 of a 2-member universe; the
/// tests below play member 1 with a raw socket.
fn start_mesh() -> (
    TcpMesh,
    Vec<crossbeam::channel::Receiver<NetEvent<SeqMsg>>>,
    Vec<SocketAddr>,
    Registry,
) {
    let addrs = free_addrs(2);
    let obs = Registry::default();
    let (mesh, rxs) = TcpMesh::start(TcpConfig::new(HostId(0), &addrs, 1), &obs).unwrap();
    (mesh, rxs, addrs, obs)
}

/// The mesh must still be able to deliver (loopback bypasses the
/// socket, so this proves the reader threads didn't take the process
/// down — the decode path is `catch`-free; a panic would abort).
fn assert_mesh_alive(mesh: &TcpMesh, rx: &crossbeam::channel::Receiver<NetEvent<SeqMsg>>) {
    mesh.lane(0).send(
        HostId(0),
        SeqMsg::Ping {
            sent_us: 1,
            echo_us: 0,
            held_us: 0,
        },
    );
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(NetEvent::Msg {
                from: HostId(0),
                msg: SeqMsg::Ping { .. },
            }) => return,
            Ok(_) => {}
            Err(_) => assert!(Instant::now() < deadline, "mesh stopped delivering"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Frames survive the wire no matter how the sender's writes split
    /// them: a burst of messages is written in arbitrary chunk sizes
    /// (often mid-length-prefix, mid-varint, mid-payload) and must be
    /// reassembled intact, in order, with correct attribution.
    #[test]
    fn split_writes_reassemble_into_whole_frames(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..600), 1..8),
        chunks in proptest::collection::vec(1usize..97, 1..12),
    ) {
        let (mesh, rxs, addrs, _obs) = start_mesh();
        let msgs: Vec<SeqMsg> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| SeqMsg::Submit {
                local: i as u64 + 1,
                payload: Bytes::from(p.clone()),
            })
            .collect();
        let mut stream_bytes = hello(1);
        for m in &msgs {
            stream_bytes.extend_from_slice(&frame(m));
        }
        let mut s = TcpStream::connect(addrs[0]).unwrap();
        s.set_nodelay(true).unwrap();
        let mut off = 0;
        let mut ci = 0;
        while off < stream_bytes.len() {
            let n = chunks[ci % chunks.len()].min(stream_bytes.len() - off);
            s.write_all(&stream_bytes[off..off + n]).unwrap();
            s.flush().unwrap();
            off += n;
            ci += 1;
        }
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut got = Vec::new();
        while got.len() < msgs.len() {
            match rxs[0].recv_timeout(Duration::from_millis(100)) {
                Ok(NetEvent::Msg { from, msg }) => {
                    prop_assert_eq!(from, HostId(1));
                    got.push(msg);
                }
                Ok(_) => {}
                Err(_) => prop_assert!(
                    Instant::now() < deadline,
                    "only {} of {} frames arrived", got.len(), msgs.len()
                ),
            }
        }
        prop_assert_eq!(got, msgs);
        mesh.shutdown();
    }

    /// An untrusted peer feeding arbitrary garbage after a valid
    /// handshake can cost us at most its own connection: no panic, no
    /// unbounded allocation, and the mesh keeps serving. Valid frames
    /// that happen to be embedded are allowed through; everything else
    /// increments the rejection counter and drops the link.
    #[test]
    fn garbage_streams_never_panic_the_reader(
        junk in proptest::collection::vec(any::<u8>(), 1..2048),
        truncate_valid in any::<bool>(),
    ) {
        let (mesh, rxs, addrs, _obs) = start_mesh();
        let mut s = TcpStream::connect(addrs[0]).unwrap();
        let mut bytes = hello(1);
        if truncate_valid {
            // A legitimate frame cut mid-body, then garbage: exercises
            // the resynchronization-is-impossible path.
            let f = frame(&SeqMsg::Submit {
                local: 9,
                payload: Bytes::from_static(b"about to be cut off"),
            });
            bytes.extend_from_slice(&f[..f.len() / 2]);
        }
        bytes.extend_from_slice(&junk);
        // The reader may drop the connection part-way through (RST on
        // unread bytes), so later writes may legitimately fail.
        let _ = s.write_all(&bytes);
        let _ = s.flush();
        drop(s);
        assert_mesh_alive(&mesh, &rxs[0]);
        mesh.shutdown();
    }

    /// Length prefixes above the frame cap are refused *before* any
    /// buffer is sized from them — a 4 GiB claim must cost zero
    /// allocation, one counter tick, and the connection.
    #[test]
    fn oversized_length_claims_are_rejected_unallocated(
        claim in consul_sim::MAX_FRAME_BYTES as u32 + 1..=u32::MAX,
    ) {
        let (mesh, rxs, addrs, obs) = start_mesh();
        let mut s = TcpStream::connect(addrs[0]).unwrap();
        let mut bytes = hello(1);
        bytes.extend_from_slice(&claim.to_be_bytes());
        let _ = s.write_all(&bytes);
        let _ = s.flush();
        let deadline = Instant::now() + Duration::from_secs(5);
        while obs.snapshot().counter("ftlinda_frames_rejected_total") != Some(1) {
            prop_assert!(Instant::now() < deadline, "rejection never counted");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_mesh_alive(&mesh, &rxs[0]);
        mesh.shutdown();
    }
}

/// Two live meshes exchanging sequencer traffic across real sockets,
/// with the byte/reconnect counters moving: the non-property smoke that
/// the full send → encode → socket → decode → deliver path works.
#[test]
fn two_meshes_converse_and_count_bytes() {
    let addrs = free_addrs(2);
    let obs0 = Registry::default();
    let obs1 = Registry::default();
    let (m0, _rx0) = TcpMesh::start(TcpConfig::new(HostId(0), &addrs, 1), &obs0).unwrap();
    let (m1, rx1) = TcpMesh::start(TcpConfig::new(HostId(1), &addrs, 1), &obs1).unwrap();
    let msg = SeqMsg::Submit {
        local: 1,
        payload: Bytes::from_static(b"counted"),
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        m0.lane(0).send(HostId(1), msg.clone());
        match rx1[0].recv_timeout(Duration::from_millis(100)) {
            Ok(NetEvent::Msg { from, msg: got }) => {
                assert_eq!(from, HostId(0));
                assert_eq!(got, msg);
                break;
            }
            _ => assert!(Instant::now() < deadline, "frame never arrived"),
        }
    }
    let family_sum = |obs: &Registry, name: &str| -> u64 {
        obs.snapshot()
            .counter_family(name)
            .map(|c| c.values().sum())
            .unwrap_or(0)
    };
    let sent = family_sum(&obs0, "ftlinda_net_sent_bytes_total");
    let recv = family_sum(&obs1, "ftlinda_net_recv_bytes_total");
    assert!(sent > 0, "sender must count link bytes");
    assert!(recv > 0, "receiver must count link bytes");
    m0.shutdown();
    m1.shutdown();
}

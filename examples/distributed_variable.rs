//! The distributed-variable failure window, demonstrated (paper §2.3,
//! Figures 2/3 — experiment E4's narrative).
//!
//! Part 1 reproduces the plain-Linda bug: a process crashes between the
//! `in` and the `out` of a two-step update and the variable vanishes.
//! Part 2 runs the same workload with the atomic AGS update under real
//! crash injection and loses nothing.
//!
//! ```text
//! cargo run --example distributed_variable
//! ```

use ftlinda::{Cluster, HostId};
use linda_paradigms::DistVar;
use linda_tuple::pat;

fn main() {
    // ----- Part 1: the window, plain Linda style ------------------------
    {
        let (cluster, rts) = Cluster::new(2);
        let ts = rts[0].create_stable_ts("vars").unwrap();
        let v = DistVar::create(&rts[0], ts, "balance", 100).unwrap();
        println!("balance = {}", v.read(&rts[1]).unwrap());

        // Two-step update that "crashes" after the in.
        let r = v
            .update_unsafe_two_step(&rts[0], |x| x + 50, /*crash_between=*/ true)
            .unwrap();
        assert_eq!(r, None);
        println!(
            "after unsafe update + crash: variable exists? {}",
            rts[1].rdp(ts, &pat!("balance", ?int)).unwrap().is_some()
        );
        // The tuple is gone; every further updater would block forever.
        assert!(rts[1].rdp(ts, &pat!("balance", ?int)).unwrap().is_none());
        cluster.shutdown();
    }

    // ----- Part 2: the atomic AGS update under a real crash --------------
    {
        let (cluster, rts) = Cluster::new(3);
        let ts = rts[0].create_stable_ts("vars").unwrap();
        let v = DistVar::create(&rts[0], ts, "balance", 0).unwrap();

        // Hosts 1 and 2 hammer the variable with atomic += 1. Host 2's
        // thread will die with its host (we deliberately never join it —
        // a process on a crashed workstation simply stops responding).
        let spawn_updater = |h: usize| {
            let rt = rts[h].clone();
            let v = v.clone();
            std::thread::spawn(move || {
                let mut done = 0;
                for _ in 0..30 {
                    if v.fetch_add(&rt, 1).is_err() {
                        break;
                    }
                    done += 1;
                }
                done
            })
        };
        let survivor = spawn_updater(1);
        let _doomed = spawn_updater(2);

        // Crash host 2 somewhere in the middle of its updates.
        std::thread::sleep(std::time::Duration::from_millis(5));
        cluster.crash(HostId(2));

        let done = survivor.join().unwrap();
        assert_eq!(done, 30, "host 1 completed all its updates");
        // However many of host 2's increments were applied before the
        // crash, the variable still exists and is consistent — the atomic
        // version can lose the crashed host's *unsent* work but never the
        // variable itself.
        let t = rts[0].rd(ts, &pat!("balance", ?int)).unwrap();
        let balance = t[1].as_int().unwrap();
        println!("survivor applied {done}, balance = {balance}");
        assert!(balance >= 30, "at least host 1's updates are present");
        println!("variable intact after crash — done.");
        cluster.shutdown();
    }
}

/root/repo/target/release/deps/linda_tuple-3c6198c555998fca.d: crates/tuple/src/lib.rs crates/tuple/src/codec.rs crates/tuple/src/pattern.rs crates/tuple/src/signature.rs crates/tuple/src/tuple.rs crates/tuple/src/value.rs

/root/repo/target/release/deps/liblinda_tuple-3c6198c555998fca.rlib: crates/tuple/src/lib.rs crates/tuple/src/codec.rs crates/tuple/src/pattern.rs crates/tuple/src/signature.rs crates/tuple/src/tuple.rs crates/tuple/src/value.rs

/root/repo/target/release/deps/liblinda_tuple-3c6198c555998fca.rmeta: crates/tuple/src/lib.rs crates/tuple/src/codec.rs crates/tuple/src/pattern.rs crates/tuple/src/signature.rs crates/tuple/src/tuple.rs crates/tuple/src/value.rs

crates/tuple/src/lib.rs:
crates/tuple/src/codec.rs:
crates/tuple/src/pattern.rs:
crates/tuple/src/signature.rs:
crates/tuple/src/tuple.rs:
crates/tuple/src/value.rs:

//! Failure-injection stress tests across the whole stack: randomized
//! crash points, repeated crash/restart cycles, and recovery invariants.

use ftlinda::{Cluster, HostId, NetConfig, Value};
use linda_paradigms::BagOfTasks;
use linda_tuple::pat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Bag-of-tasks completes under a randomly-timed worker crash, across
/// several seeds (each seed = a different crash interleaving).
#[test]
fn bag_of_tasks_survives_random_crash_points() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (cluster, rts) = Cluster::new(3);
        let bag = BagOfTasks::create(&rts[0], "bag").unwrap();
        let ids = bag.seed(&rts[0], 0, (0..10).map(Value::Int)).unwrap();
        let monitor = bag.spawn_monitor(rts[0].clone());
        let slow = |v: &Value| {
            std::thread::sleep(Duration::from_millis(8));
            Value::Int(v.as_int().unwrap() + 1000)
        };
        let _w1 = bag.spawn_worker(rts[1].clone(), slow);
        let _w2 = bag.spawn_worker(rts[2].clone(), slow);
        std::thread::sleep(Duration::from_millis(rng.gen_range(5..60)));
        cluster.crash(HostId(2));
        let results = bag.collect(&rts[0], &ids).unwrap();
        assert_eq!(results.len(), 10, "seed {seed}: all tasks completed");
        for (id, v) in &results {
            assert_eq!(v.as_int().unwrap(), id + 1000, "seed {seed}");
        }
        bag.stop_monitor(&rts[0]).unwrap();
        monitor.join().unwrap();
        bag.poison(&rts[0]).unwrap();
        cluster.shutdown();
    }
}

/// Repeated crash/restart cycles of the same host: each incarnation
/// replays to the survivors' state, and each crash yields exactly one
/// fresh failure tuple.
#[test]
fn repeated_crash_restart_cycles_converge() {
    let (cluster, rts) = Cluster::new(3);
    let ts = rts[0].create_stable_ts("main").unwrap();
    let mut current = rts[2].clone();
    for round in 0..3 {
        rts[0]
            .out(ts, linda_tuple::tuple!("round", round as i64))
            .unwrap();
        cluster.crash(HostId(2));
        // One failure tuple per incarnation.
        let f = rts[0].in_(ts, &pat!("failure", 2)).unwrap();
        assert_eq!(f, linda_tuple::tuple!("failure", 2));
        assert_eq!(rts[1].rdp(ts, &pat!("failure", 2)).unwrap(), None);
        current = cluster.restart(HostId(2));
        assert!(
            current.wait_applied(rts[0].applied_seq(), Duration::from_secs(5)),
            "round {round}: restarted host never caught up"
        );
        assert_eq!(
            current.snapshot(ts),
            rts[0].snapshot(ts),
            "round {round}: replayed state matches"
        );
    }
    // The final incarnation is fully functional.
    current.out(ts, linda_tuple::tuple!("final")).unwrap();
    assert_eq!(
        rts[1].in_(ts, &pat!("final")).unwrap(),
        linda_tuple::tuple!("final")
    );
    cluster.shutdown();
}

/// Crashing the coordinator (host 0) mid-traffic: ordering continues
/// under the new coordinator and no AGS submitted by survivors is lost.
#[test]
fn coordinator_crash_under_load() {
    let cfg = NetConfig {
        latency: Duration::from_micros(200),
        jitter: Duration::from_micros(50),
        detect_delay: Duration::from_millis(1),
        ..NetConfig::default()
    };
    let (cluster, rts) = Cluster::builder().hosts(3).net(cfg).build();
    let ts = rts[1].create_stable_ts("main").unwrap();

    // Host 1 pumps outs while host 0 (the coordinator) dies.
    let rt1 = rts[1].clone();
    let pump = std::thread::spawn(move || {
        for i in 0..40i64 {
            rt1.out(ts, linda_tuple::tuple!("n", i)).unwrap();
        }
    });
    std::thread::sleep(Duration::from_millis(3));
    cluster.crash(HostId(0));
    pump.join().unwrap();

    // Every deposited tuple is withdrawable exactly once.
    let mut seen = Vec::new();
    for _ in 0..40 {
        let t = rts[2].in_(ts, &pat!("n", ?int)).unwrap();
        seen.push(t[1].as_int().unwrap());
    }
    seen.sort_unstable();
    assert_eq!(seen, (0..40).collect::<Vec<_>>());
    assert_eq!(rts[2].inp(ts, &pat!("n", ?int)).unwrap(), None);
    cluster.shutdown();
}

/// Failure tuples from multiple crashes accumulate distinctly and a
/// monitor-style consumer sees each exactly once.
#[test]
fn multiple_failures_distinct_tuples() {
    let (cluster, rts) = Cluster::new(4);
    let ts = rts[0].create_stable_ts("main").unwrap();
    cluster.crash(HostId(2));
    cluster.crash(HostId(3));
    let mut failed: Vec<i64> = (0..2)
        .map(|_| {
            rts[0].in_(ts, &pat!("failure", ?int)).unwrap()[1]
                .as_int()
                .unwrap()
        })
        .collect();
    failed.sort_unstable();
    assert_eq!(failed, vec![2, 3]);
    // No third failure tuple.
    assert_eq!(rts[1].rdp(ts, &pat!("failure", ?int)).unwrap(), None);
    cluster.shutdown();
}

/// Blocked AGSs survive an unrelated host's crash and still fire later.
#[test]
fn blocked_ags_survive_unrelated_crash() {
    let (cluster, rts) = Cluster::new(3);
    let ts = rts[0].create_stable_ts("main").unwrap();
    let rt1 = rts[1].clone();
    let waiter = std::thread::spawn(move || rt1.in_(ts, &pat!("eventually", ?int)).unwrap());
    // Wait for the in_ to actually block at the replicas before crashing.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while rts[0].blocked_len() == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "waiter never blocked at the replicas"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    cluster.crash(HostId(2));
    rts[0].rd(ts, &pat!("failure", 2)).unwrap();
    rts[0]
        .out(ts, linda_tuple::tuple!("eventually", 42))
        .unwrap();
    assert_eq!(
        waiter.join().unwrap(),
        linda_tuple::tuple!("eventually", 42)
    );
    cluster.shutdown();
}

/root/repo/target/debug/deps/consul_sim-4e8134da0d9c831b.d: crates/consul/src/lib.rs crates/consul/src/isis.rs crates/consul/src/net.rs crates/consul/src/order.rs crates/consul/src/sequencer.rs crates/consul/src/stats.rs

/root/repo/target/debug/deps/consul_sim-4e8134da0d9c831b: crates/consul/src/lib.rs crates/consul/src/isis.rs crates/consul/src/net.rs crates/consul/src/order.rs crates/consul/src/sequencer.rs crates/consul/src/stats.rs

crates/consul/src/lib.rs:
crates/consul/src/isis.rs:
crates/consul/src/net.rs:
crates/consul/src/order.rs:
crates/consul/src/sequencer.rs:
crates/consul/src/stats.rs:

//! # linda-tuple
//!
//! Tuple and pattern model for the FT-Linda reproduction: typed values,
//! tuples, anti-tuples (patterns with typed formals), signature analysis,
//! and a compact wire codec.
//!
//! This crate is the leaf of the workspace — everything else (the classic
//! Linda kernel, the AGS compiler, the replicated state machine) builds on
//! these types. Matching is *deterministic*: values compare bit-exactly
//! (floats by IEEE bit pattern) so that replicated tuple spaces evolve
//! identically on every host.
//!
//! ```
//! use linda_tuple::{tuple, pat, Value};
//!
//! let t = tuple!("count", 41);
//! let p = pat!("count", ?int);
//! assert_eq!(p.bind(&t), Some(vec![Value::Int(41)]));
//! ```

#![warn(missing_docs)]

mod codec;
mod pattern;
mod signature;
mod tuple;
mod value;

pub use codec::{
    decode_tuple, encode_tuple, get_ivarint, get_pattern, get_tuple, get_uvarint, get_value,
    put_ivarint, put_pattern, put_tuple, put_uvarint, put_value, DecodeError, MAX_VALUE_DEPTH,
};
pub use pattern::{PatField, Pattern};
pub use signature::{
    SigId, Signature, SignatureCatalog, StableBuildHasher, StableHasher, StableMap,
};
pub use tuple::Tuple;
pub use value::{TypeTag, Value};

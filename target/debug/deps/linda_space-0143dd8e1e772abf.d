/root/repo/target/debug/deps/linda_space-0143dd8e1e772abf.d: crates/space/src/lib.rs crates/space/src/space.rs crates/space/src/store.rs

/root/repo/target/debug/deps/linda_space-0143dd8e1e772abf: crates/space/src/lib.rs crates/space/src/space.rs crates/space/src/store.rs

crates/space/src/lib.rs:
crates/space/src/space.rs:
crates/space/src/store.rs:

//! Message and byte accounting.
//!
//! Experiment E9 checks the paper's headline implementation claim: one
//! ordered multicast per AGS, independent of how many tuple operations the
//! AGS contains. These counters are the measurement instrument: the
//! network layer counts physical messages/bytes, and the ordering layer
//! counts logical broadcasts.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters for network traffic. All methods are lock-free.
#[derive(Debug, Default)]
pub struct NetStats {
    msgs: AtomicU64,
    bytes: AtomicU64,
}

impl NetStats {
    /// Record one physical message of `size` bytes.
    pub fn record_msg(&self, size: usize) {
        self.msgs.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(size as u64, Ordering::Relaxed);
    }

    /// Total physical messages sent since creation (or last reset).
    pub fn messages(&self) -> u64 {
        self.msgs.load(Ordering::Relaxed)
    }

    /// Total payload bytes sent.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Zero the counters (between benchmark phases).
    pub fn reset(&self) {
        self.msgs.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
    }

    /// Snapshot `(messages, bytes)`.
    pub fn snapshot(&self) -> (u64, u64) {
        (self.messages(), self.bytes())
    }
}

/// Counters for the ordering layer: logical broadcasts vs. physical
/// messages lets experiments separate protocol overhead from fan-out.
#[derive(Debug, Default)]
pub struct OrderStats {
    broadcasts: AtomicU64,
    delivered: AtomicU64,
    view_changes: AtomicU64,
    retransmits: AtomicU64,
    ordered_multicasts: AtomicU64,
    batches: AtomicU64,
    batch_entries: AtomicU64,
}

impl OrderStats {
    /// Record one logical atomic broadcast submitted.
    pub fn record_broadcast(&self) {
        self.broadcasts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one ordered multicast leaving the coordinator (a solo
    /// record or a whole batch — the unit the paper's "one multicast per
    /// AGS" claim counts).
    pub fn record_ordered_multicast(&self) {
        self.ordered_multicasts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a coalesced flush of `entries` submits in one multicast.
    pub fn record_batch(&self, entries: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_entries.fetch_add(entries, Ordering::Relaxed);
    }

    /// Record one message delivered to the application in total order.
    pub fn record_delivery(&self) {
        self.delivered.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a membership view change.
    pub fn record_view_change(&self) {
        self.view_changes.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a retransmission (gap repair or resubmission).
    pub fn record_retransmit(&self) {
        self.retransmits.fetch_add(1, Ordering::Relaxed);
    }

    /// Logical broadcasts submitted.
    pub fn broadcasts(&self) -> u64 {
        self.broadcasts.load(Ordering::Relaxed)
    }

    /// Ordered deliveries to the application.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// View changes observed.
    pub fn view_changes(&self) -> u64 {
        self.view_changes.load(Ordering::Relaxed)
    }

    /// Retransmissions performed.
    pub fn retransmits(&self) -> u64 {
        self.retransmits.load(Ordering::Relaxed)
    }

    /// Ordered multicasts issued by coordinators (solo records count 1,
    /// a batch of any size counts 1). `ordered_multicasts() <
    /// broadcasts()` means group commit amortized ordering cost.
    pub fn ordered_multicasts(&self) -> u64 {
        self.ordered_multicasts.load(Ordering::Relaxed)
    }

    /// Multi-entry batch flushes performed.
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Total submits that were delivered inside multi-entry batches.
    pub fn batch_entries(&self) -> u64 {
        self.batch_entries.load(Ordering::Relaxed)
    }

    /// Name/value snapshot of every counter, in declaration order. One
    /// sequencer lane = one `OrderStats`, so a sharded deployment turns
    /// each row into a labeled family child (e.g. `{shard="1"}`) without
    /// hand-listing the fields at every call site.
    pub fn census(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("broadcasts", self.broadcasts()),
            ("delivered", self.delivered()),
            ("view_changes", self.view_changes()),
            ("retransmits", self.retransmits()),
            ("ordered_multicasts", self.ordered_multicasts()),
            ("batches", self.batches()),
            ("batch_entries", self.batch_entries()),
        ]
    }

    /// Zero every counter (between benchmark phases).
    pub fn reset(&self) {
        self.broadcasts.store(0, Ordering::Relaxed);
        self.delivered.store(0, Ordering::Relaxed);
        self.view_changes.store(0, Ordering::Relaxed);
        self.retransmits.store(0, Ordering::Relaxed);
        self.ordered_multicasts.store(0, Ordering::Relaxed);
        self.batches.store(0, Ordering::Relaxed);
        self.batch_entries.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn net_stats_accumulate_and_reset() {
        let s = NetStats::default();
        s.record_msg(10);
        s.record_msg(20);
        assert_eq!(s.snapshot(), (2, 30));
        s.reset();
        assert_eq!(s.snapshot(), (0, 0));
    }

    #[test]
    fn order_stats_accumulate() {
        let s = OrderStats::default();
        s.record_broadcast();
        s.record_delivery();
        s.record_delivery();
        s.record_view_change();
        s.record_retransmit();
        s.record_ordered_multicast();
        s.record_batch(3);
        assert_eq!(s.broadcasts(), 1);
        assert_eq!(s.delivered(), 2);
        assert_eq!(s.view_changes(), 1);
        assert_eq!(s.retransmits(), 1);
        assert_eq!(s.ordered_multicasts(), 1);
        assert_eq!(s.batches(), 1);
        assert_eq!(s.batch_entries(), 3);
        let census = s.census();
        assert_eq!(census.len(), 7);
        assert!(census.contains(&("ordered_multicasts", 1)));
        assert!(census.contains(&("delivered", 2)));
        s.reset();
        assert_eq!(s.broadcasts(), 0);
        assert_eq!(s.ordered_multicasts(), 0);
        assert_eq!(s.batch_entries(), 0);
    }

    #[test]
    fn net_stats_threadsafe() {
        let s = std::sync::Arc::new(NetStats::default());
        let hs: Vec<_> = (0..4)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record_msg(1);
                    }
                })
            })
            .collect();
        for h in hs {
            h.join().unwrap();
        }
        assert_eq!(s.snapshot(), (4000, 4000));
    }
}

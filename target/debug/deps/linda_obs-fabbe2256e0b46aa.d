/root/repo/target/debug/deps/linda_obs-fabbe2256e0b46aa.d: crates/obs/src/lib.rs

/root/repo/target/debug/deps/linda_obs-fabbe2256e0b46aa: crates/obs/src/lib.rs

crates/obs/src/lib.rs:

/root/repo/target/debug/examples/lcc_compile-23568daaf45de1c5.d: examples/lcc_compile.rs Cargo.toml

/root/repo/target/debug/examples/liblcc_compile-23568daaf45de1c5.rmeta: examples/lcc_compile.rs Cargo.toml

examples/lcc_compile.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

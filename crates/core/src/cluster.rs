//! Cluster assembly and fault injection.
//!
//! A [`Cluster`] is the simulated network of workstations: it owns the
//! Consul group and hands out one [`Runtime`] per host. Crashing and
//! restarting hosts goes through the cluster, mirroring how the paper's
//! evaluation kills workstations under a running application.

use crate::runtime::Runtime;
use consul_sim::{HostId, NetConfig, SeqGroup};
use std::time::Duration;

/// Builder for a [`Cluster`].
#[derive(Debug, Clone)]
pub struct ClusterBuilder {
    hosts: u32,
    net: NetConfig,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder {
            hosts: 3,
            net: NetConfig::instant(),
        }
    }
}

impl ClusterBuilder {
    /// Number of hosts (replicas). The paper's prototype used 3 Sun-3s.
    pub fn hosts(mut self, n: u32) -> Self {
        self.hosts = n;
        self
    }

    /// Simulated network configuration (latency, jitter, detection delay).
    pub fn net(mut self, cfg: NetConfig) -> Self {
        self.net = cfg;
        self
    }

    /// LAN-like latency shortcut.
    pub fn latency(mut self, one_way: Duration) -> Self {
        self.net = NetConfig::lan(one_way);
        self
    }

    /// Use heartbeat-based failure detection instead of the simulated
    /// oracle detector: crashes are discovered from ping silence, as a
    /// real deployment would.
    pub fn heartbeats(mut self, period: Duration, timeout: Duration) -> Self {
        self.net.heartbeats = Some(consul_sim::Heartbeat { period, timeout });
        self
    }

    /// Build the cluster and one runtime per host.
    pub fn build(self) -> (Cluster, Vec<Runtime>) {
        let (group, members) = SeqGroup::new(self.hosts, self.net);
        let runtimes: Vec<Runtime> = members.into_iter().map(Runtime::new).collect();
        (
            Cluster {
                group,
                runtimes: runtimes.clone(),
            },
            runtimes,
        )
    }
}

/// A running FT-Linda cluster over the simulated network.
pub struct Cluster {
    group: SeqGroup,
    runtimes: Vec<Runtime>,
}

impl Cluster {
    /// Start building a cluster.
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// Convenience: `n` hosts, zero-latency network.
    pub fn new(n: u32) -> (Cluster, Vec<Runtime>) {
        Cluster::builder().hosts(n).build()
    }

    /// Crash a host (fail-silent). Every surviving replica will deposit a
    /// `("failure", host)` tuple into each stable TS once the failure is
    /// detected and ordered.
    pub fn crash(&self, host: HostId) {
        self.group.crash(host);
    }

    /// Restart a crashed host. The fresh runtime replays the ordered log
    /// and converges to the surviving replicas' state; a `Join` record is
    /// ordered into the stream.
    pub fn restart(&self, host: HostId) -> Runtime {
        Runtime::new(self.group.restart(host))
    }

    /// Network statistics (physical messages/bytes) — experiment E9.
    pub fn net_stats(&self) -> (u64, u64) {
        self.group.net().stats().snapshot()
    }

    /// Reset network statistics between measurement phases.
    pub fn reset_net_stats(&self) {
        self.group.net().stats().reset();
    }

    /// Ordering-layer statistics.
    pub fn order_stats(&self) -> &consul_sim::OrderStats {
        self.group.stats()
    }

    /// Tear everything down.
    pub fn shutdown(&self) {
        for rt in &self.runtimes {
            rt.shutdown();
        }
        self.group.shutdown();
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/root/repo/target/debug/deps/stress_tests-74c2f1907bdfabb3.d: crates/consul/tests/stress_tests.rs

/root/repo/target/debug/deps/stress_tests-74c2f1907bdfabb3: crates/consul/tests/stress_tests.rs

crates/consul/tests/stress_tests.rs:

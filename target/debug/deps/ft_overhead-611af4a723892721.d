/root/repo/target/debug/deps/ft_overhead-611af4a723892721.d: crates/bench/benches/ft_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libft_overhead-611af4a723892721.rmeta: crates/bench/benches/ft_overhead.rs Cargo.toml

crates/bench/benches/ft_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

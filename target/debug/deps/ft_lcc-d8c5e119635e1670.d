/root/repo/target/debug/deps/ft_lcc-d8c5e119635e1670.d: crates/lcc/src/lib.rs crates/lcc/src/lexer.rs crates/lcc/src/parser.rs crates/lcc/src/pretty.rs

/root/repo/target/debug/deps/ft_lcc-d8c5e119635e1670: crates/lcc/src/lib.rs crates/lcc/src/lexer.rs crates/lcc/src/parser.rs crates/lcc/src/pretty.rs

crates/lcc/src/lib.rs:
crates/lcc/src/lexer.rs:
crates/lcc/src/parser.rs:
crates/lcc/src/pretty.rs:

/root/repo/target/debug/examples/divide_conquer-f044081221febea1.d: examples/divide_conquer.rs

/root/repo/target/debug/examples/divide_conquer-f044081221febea1: examples/divide_conquer.rs

examples/divide_conquer.rs:

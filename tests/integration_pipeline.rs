//! Full-stack integration: FT-lcc DSL → AGS IR → replicated cluster →
//! paradigm library, all in one scenario.

use ft_lcc::Compiler;
use ftlinda::{Cluster, HostId, TsId};
use linda_paradigms::{consensus, BagOfTasks, DistVar};
use linda_tuple::{pat, tuple, Value};
use std::time::Duration;

/// A compiled DSL program drives a live cluster and interoperates with
/// API-level clients on other hosts.
#[test]
fn dsl_program_runs_on_cluster() {
    let (cluster, rts) = Cluster::new(3);
    let ts = rts[0].create_stable_ts("warehouse").unwrap();

    let mut compiler = Compiler::new();
    compiler.bind_stable("warehouse", ts);
    let program = compiler
        .compile(
            r#"
            # initial stock
            out(warehouse, "stock", "widgets", 10);
            # an order consumes stock and records a shipment, atomically
            < in(warehouse, "stock", "widgets", ?int n) =>
                out(warehouse, "stock", "widgets", n - 3);
                out(warehouse, "shipment", self, 3) >
        "#,
        )
        .unwrap();

    for (i, ags) in program.statements.iter().enumerate() {
        rts[i % 3].execute(ags).unwrap();
    }

    // API-level client on another host observes the DSL program's effect.
    assert_eq!(
        rts[2].rd(ts, &pat!("stock", "widgets", ?int)).unwrap(),
        tuple!("stock", "widgets", 7)
    );
    let shipment = rts[1].in_(ts, &pat!("shipment", ?int, 3)).unwrap();
    assert_eq!(shipment[1].as_int().unwrap(), 1, "host1 executed stmt 1");
    cluster.shutdown();
}

/// Bag-of-tasks, distributed variable, and consensus all share one
/// cluster and interact through the same replicated spaces.
#[test]
fn paradigms_compose_on_one_cluster() {
    let (cluster, rts) = Cluster::new(3);

    // Elect a coordinator via consensus.
    let cts = rts[0].create_stable_ts("control").unwrap();
    let leader = consensus::propose(&rts[1], cts, "leader", 1).unwrap();
    assert_eq!(leader, 1);

    // The leader seeds a bag; everyone works; a DistVar counts commits.
    let bag = BagOfTasks::create(&rts[leader as usize], "jobs").unwrap();
    let ids = bag
        .seed(&rts[leader as usize], 0, (1..=9).map(Value::Int))
        .unwrap();
    let done_ctr = DistVar::create(&rts[0], cts, "done", 0).unwrap();

    let workers: Vec<_> = rts
        .iter()
        .map(|rt| {
            let ctr = done_ctr.clone();
            let rt2 = rt.clone();
            bag.spawn_worker(rt.clone(), move |v| {
                ctr.fetch_add(&rt2, 1).unwrap();
                Value::Int(v.as_int().unwrap() * 10)
            })
        })
        .collect();

    let results = bag.collect(&rts[0], &ids).unwrap();
    assert_eq!(results.len(), 9);
    for (id, v) in &results {
        assert_eq!(v.as_int().unwrap(), (id + 1) * 10);
    }
    assert_eq!(done_ctr.read(&rts[2]).unwrap(), 9);

    bag.poison(&rts[0]).unwrap();
    for w in workers {
        w.join().unwrap();
    }
    cluster.shutdown();
}

/// A restarted host replays history and immediately serves paradigm
/// traffic again.
#[test]
fn restart_then_participate_in_paradigms() {
    let (cluster, rts) = Cluster::new(3);
    let ts = rts[0].create_stable_ts("vars").unwrap();
    let v = DistVar::create(&rts[0], ts, "x", 0).unwrap();
    for _ in 0..5 {
        v.fetch_add(&rts[1], 1).unwrap();
    }
    cluster.crash(HostId(2));
    rts[0].rd(ts, &pat!("failure", 2)).unwrap();
    for _ in 0..5 {
        v.fetch_add(&rts[0], 1).unwrap();
    }
    let rt2 = cluster.restart(HostId(2));
    // Wait for convergence, then the restarted host updates the variable.
    assert!(
        rt2.wait_applied(rts[0].applied_seq(), Duration::from_secs(5)),
        "restarted host never caught up"
    );
    assert_eq!(v.fetch_add(&rt2, 1).unwrap(), 10);
    assert_eq!(v.read(&rts[0]).unwrap(), 11);
    cluster.shutdown();
}

/// The strong-inp guarantee holds across the DSL and API: after a
/// definitive "absent" answer, a tuple inserted later is found.
#[test]
fn strong_semantics_across_frontends() {
    let (cluster, rts) = Cluster::new(2);
    let ts = rts[0].create_stable_ts("s").unwrap();
    assert_eq!(ts, TsId(0));

    let mut compiler = Compiler::new();
    compiler.bind_stable("s", ts);
    let inp = &compiler
        .compile(r#"inp(s, "flag", ?int);"#)
        .unwrap()
        .statements[0];

    // Definitive absence (branch 1 = true branch fired).
    assert_eq!(rts[1].execute(inp).unwrap().branch, 1);
    rts[0].out(ts, tuple!("flag", 5)).unwrap();
    let out = rts[1].execute(inp).unwrap();
    assert_eq!(out.branch, 0);
    assert_eq!(out.bindings, vec![Value::Int(5)]);
    cluster.shutdown();
}

//! Offline shim for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` — a multi-producer multi-consumer channel
//! with cloneable receivers, `len()`/`is_empty()`, timed receives, and
//! disconnect semantics matching crossbeam-channel. Implemented as a
//! `Mutex<VecDeque>` + two `Condvar`s; throughput is far below the real
//! lock-free implementation but semantics (which the simulator relies on)
//! are the same.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        recv_ready: Condvar,
        send_ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.queue.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    /// Sending half of a channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half of a channel. Cloneable (MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => f.write_str("sending on a disconnected channel"),
            }
        }
    }

    impl<T> std::error::Error for TrySendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum TryRecvError {
        /// Channel is currently empty.
        Empty,
        /// Channel is empty and all senders disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq, Clone, Copy)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout.
        Timeout,
        /// Channel is empty and all senders disconnected.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on receive"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Creates a channel of unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Creates a channel holding at most `cap` messages (senders block when
    /// full). `cap == 0` degenerates to capacity 1 rather than a rendezvous.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            recv_ready: Condvar::new(),
            send_ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking while a bounded channel is full. Errors only
        /// when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                let full = st.cap.is_some_and(|c| st.items.len() >= c);
                if !full {
                    st.items.push_back(msg);
                    drop(st);
                    self.shared.recv_ready.notify_one();
                    return Ok(());
                }
                st = self
                    .shared
                    .send_ready
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Sends `msg` without blocking: errors when the bounded channel
        /// is full or every receiver has been dropped.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = self.shared.lock();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if st.cap.is_some_and(|c| st.items.len() >= c) {
                return Err(TrySendError::Full(msg));
            }
            st.items.push_back(msg);
            drop(st);
            self.shared.recv_ready.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().items.len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives or all senders
        /// disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.lock();
            loop {
                if let Some(item) = st.items.pop_front() {
                    drop(st);
                    self.shared.send_ready.notify_one();
                    return Ok(item);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .recv_ready
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Receives a message, waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.lock();
            loop {
                if let Some(item) = st.items.pop_front() {
                    drop(st);
                    self.shared.send_ready.notify_one();
                    return Ok(item);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (g, _res) = self
                    .shared
                    .recv_ready
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = g;
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.lock();
            if let Some(item) = st.items.pop_front() {
                drop(st);
                self.shared.send_ready.notify_one();
                return Ok(item);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Blocking iterator; ends when all senders disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        /// Non-blocking iterator over currently queued messages.
        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().items.len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    /// Non-blocking iterator returned by [`Receiver::try_iter`].
    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.lock().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.lock().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.lock();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.recv_ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.lock();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.shared.send_ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_in_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.len(), 2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<i32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx, rx) = unbounded::<i32>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            let h = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(10));
                tx.send(42).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
            h.join().unwrap();
        }

        #[test]
        fn cloned_receivers_share_stream() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            let a: Vec<i32> = rx.try_iter().take(5).collect();
            let b: Vec<i32> = rx2.try_iter().collect();
            assert_eq!(a.len() + b.len(), 10);
        }
    }
}

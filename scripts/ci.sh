#!/usr/bin/env bash
# Full local CI: exactly what .github/workflows/ci.yml runs.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test -q --workspace

echo "CI green."

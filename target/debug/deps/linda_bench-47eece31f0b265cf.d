/root/repo/target/debug/deps/linda_bench-47eece31f0b265cf.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/liblinda_bench-47eece31f0b265cf.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR

//! End-to-end tests of the observability layer: per-stage AGS latency
//! histograms, the one-multicast-per-AGS accounting, the digest
//! divergence detector, and the rejoin give-up path.

use ftlinda::{Ags, Cluster, HostId, MatchField as MF, Operand, TypeTag};
use linda_tuple::{pat, tuple};
use std::time::{Duration, Instant};

/// Every pipeline stage shows up in the metrics snapshot with a
/// non-empty histogram and finite percentiles after real traffic.
#[test]
fn metrics_snapshot_reports_per_stage_latency() {
    let (cluster, rts) = Cluster::new(3);
    let ts = rts[0].create_stable_ts("main").unwrap();
    for i in 0..20i64 {
        rts[0].out(ts, tuple!("n", i)).unwrap();
    }
    for _ in 0..20 {
        rts[0].in_(ts, &pat!("n", ?int)).unwrap();
    }

    let obs = rts[0].obs();
    for stage in [
        "ftlinda_ags_submit_seconds",
        "ftlinda_ags_order_seconds",
        "ftlinda_ags_execute_seconds",
        "ftlinda_ags_notify_seconds",
        "ftlinda_ags_total_seconds",
    ] {
        let snap = obs.histogram(stage, "").snapshot();
        assert!(snap.count() > 0, "{stage} recorded no samples");
        let (p50, p95, p99) = (
            snap.p50().unwrap(),
            snap.p95().unwrap(),
            snap.p99().unwrap(),
        );
        assert!(p50 > 0.0 && p50.is_finite(), "{stage} p50 = {p50}");
        assert!(p50 <= p95 && p95 <= p99, "{stage} quantiles ordered");
    }

    // The Prometheus rendering carries the same series.
    let text = rts[0].metrics_text();
    for needle in [
        "# TYPE ftlinda_ags_total_seconds histogram",
        "ftlinda_ags_total_seconds_bucket{le=\"+Inf\"}",
        "ftlinda_ags_execute_seconds_count",
        "# TYPE ftlinda_blocked_ags gauge",
        "ftlinda_applied_seq",
    ] {
        assert!(
            text.contains(needle),
            "metrics text missing {needle}:\n{text}"
        );
    }
    cluster.shutdown();
}

/// Kernel gauges track replica state: blocked-queue depth and stable
/// space size move with traffic.
#[test]
fn kernel_gauges_track_state() {
    let (cluster, rts) = Cluster::new(2);
    let ts = rts[0].create_stable_ts("main").unwrap();
    let rt1 = rts[1].clone();
    let waiter = std::thread::spawn(move || rt1.in_(ts, &pat!("later", ?int)).unwrap());
    let deadline = Instant::now() + Duration::from_secs(5);
    let blocked = rts[0].obs().gauge("ftlinda_blocked_ags", "");
    while blocked.get() == 0 {
        assert!(Instant::now() < deadline, "blocked gauge never rose");
        std::thread::sleep(Duration::from_millis(2));
    }
    rts[0].out(ts, tuple!("later", 7)).unwrap();
    waiter.join().unwrap();
    // Host 0 may lag host 1 (whose kernel routed the completion) by a
    // moment; wait until it has applied the same prefix.
    assert!(rts[0].wait_applied(rts[1].applied_seq(), Duration::from_secs(5)));
    assert_eq!(blocked.get(), 0, "blocked gauge falls back to zero");

    rts[0].out(ts, tuple!("kept", 1)).unwrap();
    let stable = rts[0].obs().gauge("ftlinda_stable_tuples", "");
    assert!(stable.get() >= 1, "stable gauge counts the kept tuple");
    cluster.shutdown();
}

/// The paper's E9 claim, observed through the metrics layer: a multi-op
/// AGS costs exactly one ordered broadcast.
#[test]
fn broadcasts_equal_ags_count_for_multi_op_ags() {
    let (cluster, rts) = Cluster::new(3);
    let ts = rts[0].create_stable_ts("main").unwrap();
    let before = cluster.order_stats().broadcasts();
    let n = 10;
    for _ in 0..n {
        // 4 body ops, still one broadcast.
        let ags = Ags::builder()
            .guard_true()
            .out(ts, vec![Operand::cst("s"), Operand::cst(1)])
            .out(ts, vec![Operand::cst("s"), Operand::cst(2)])
            .in_(ts, vec![MF::actual("s"), MF::bind(TypeTag::Int)])
            .in_(ts, vec![MF::actual("s"), MF::bind(TypeTag::Int)])
            .build()
            .unwrap();
        rts[1].execute(&ags).unwrap();
    }
    let after = cluster.order_stats().broadcasts();
    assert_eq!(after - before, n, "one ordered broadcast per AGS");
    cluster.shutdown();
}

/// Deliberately desynchronizing one replica (bypassing the total order)
/// trips the divergence detector: the counter rises and a structured
/// `digest_divergence` event is emitted.
#[test]
fn divergence_detector_fires_on_fault_injection() {
    let (cluster, rts) = Cluster::builder()
        .hosts(3)
        .divergence_period(Duration::from_millis(5))
        .build();
    let ts = rts[0].create_stable_ts("main").unwrap();
    rts[0].out(ts, tuple!("base", 1)).unwrap();

    // All replicas quiesce at the same applied seq; none diverge yet.
    for rt in &rts[1..] {
        assert!(rt.wait_applied(rts[0].applied_seq(), Duration::from_secs(5)));
    }
    std::thread::sleep(Duration::from_millis(30));
    let counter = cluster.obs().counter("ftlinda_digest_divergence_total", "");
    assert_eq!(counter.get(), 0, "no divergence before fault injection");

    // Corrupt replica 2 locally, bypassing the ordered stream.
    assert!(rts[2].fault_inject_local(ts, tuple!("phantom", 666)));

    let deadline = Instant::now() + Duration::from_secs(5);
    while counter.get() == 0 {
        assert!(Instant::now() < deadline, "divergence never detected");
        std::thread::sleep(Duration::from_millis(5));
    }
    let events = cluster.obs().events().recent_of("digest_divergence");
    assert!(!events.is_empty(), "structured divergence event emitted");
    assert!(events[0].field("seq").is_some(), "event names the sequence");
    cluster.shutdown();
}

/// A restarted host that can find no live peer gives up after the
/// bounded retry schedule and surfaces a rejoin error instead of
/// spinning forever.
#[test]
fn rejoin_gives_up_when_no_peer_answers() {
    let (cluster, rts) = Cluster::new(3);
    let ts = rts[0].create_stable_ts("main").unwrap();
    rts[0].out(ts, tuple!("x", 1)).unwrap();
    cluster.crash(HostId(2));
    // Kill every potential snapshot source, then try to rejoin.
    cluster.crash(HostId(0));
    cluster.crash(HostId(1));
    let rt2 = cluster.restart(HostId(2));
    let deadline = Instant::now() + Duration::from_secs(10);
    let err = loop {
        if let Some(e) = rt2.rejoin_error() {
            break e;
        }
        assert!(Instant::now() < deadline, "rejoin never gave up");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(
        err.contains("rejoin"),
        "error should describe the rejoin failure: {err}"
    );
    let events = rt2.obs().events().recent_of("rejoin_failed");
    assert!(!events.is_empty(), "structured rejoin_failed event emitted");
    cluster.shutdown();
}

/root/repo/target/release/deps/ftlinda_kernel-6feca1fe4ce1881d.d: crates/kernel/src/lib.rs crates/kernel/src/exec.rs crates/kernel/src/kernel.rs crates/kernel/src/proto.rs

/root/repo/target/release/deps/libftlinda_kernel-6feca1fe4ce1881d.rlib: crates/kernel/src/lib.rs crates/kernel/src/exec.rs crates/kernel/src/kernel.rs crates/kernel/src/proto.rs

/root/repo/target/release/deps/libftlinda_kernel-6feca1fe4ce1881d.rmeta: crates/kernel/src/lib.rs crates/kernel/src/exec.rs crates/kernel/src/kernel.rs crates/kernel/src/proto.rs

crates/kernel/src/lib.rs:
crates/kernel/src/exec.rs:
crates/kernel/src/kernel.rs:
crates/kernel/src/proto.rs:

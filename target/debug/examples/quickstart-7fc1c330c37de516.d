/root/repo/target/debug/examples/quickstart-7fc1c330c37de516.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7fc1c330c37de516: examples/quickstart.rs

examples/quickstart.rs:
